//! AST → IR lowering.
//!
//! Compiles a checked [`TranslationUnit`] into an [`IrProgram`] for one
//! target layout. The pass is run **once** and the result shared by every
//! memory model with that layout — the differential harness lowers twice
//! (LP64 and CHERI) instead of re-walking the AST seven times.
//!
//! The lowering is a faithful linearization of the AST walker it replaced:
//! evaluation order (place before right-hand side, left argument before
//! right), array-decay points, scope lifetimes (objects registered at the
//! declaration, retired at scope exit) and lazy unsupported-construct
//! errors are all preserved, so `RtError` reporting is unchanged.

use crate::ir::{
    BinMeta, Builtin, ConstOrigin, IrFunc, IrGlobal, IrProgram, Op, OpInfo, SlotDef, TyId,
    ELEM_POISON,
};
use crate::layout::{align_of, field_offset, size_of, TargetInfo};
use crate::machine::{GLOBALS_OFF, VBASE};
use cheri_c::{BinOp, Block, Expr, ExprKind, FuncDef, Stmt, TranslationUnit, Type, UnOp};
use std::collections::HashMap;

/// Lowers `unit` for `target`. The result is immutable and `Sync`: threads
/// running different models over the same layout share one lowering.
pub fn lower(unit: &TranslationUnit, target: TargetInfo) -> IrProgram {
    let mut lw = Lowerer {
        unit,
        ti: target,
        code: Vec::new(),
        info: Vec::new(),
        cur: OpInfo::default(),
        types: Vec::new(),
        ty_map: HashMap::new(),
        strings: Vec::new(),
        str_map: HashMap::new(),
        globals: Vec::new(),
        global_map: HashMap::new(),
        scopes: Vec::new(),
        frame_cur: 0,
        func_vars: Vec::new(),
        loops: Vec::new(),
    };
    lw.layout_globals();
    let str_ty = lw.tyid(&Type::ptr_to(Type::char_()));
    let mut funcs: Vec<IrFunc> = unit.funcs.iter().map(|f| lw.lower_func(f)).collect();
    let init_fid = funcs.len() as u32;
    funcs.push(lw.lower_global_init());
    IrProgram {
        target,
        code: lw.code,
        info: lw.info,
        funcs,
        types: lw.types,
        strings: lw.strings,
        globals: lw.globals,
        init_fid,
        str_ty,
    }
}

#[derive(Clone)]
struct Local {
    off: u32,
    size: u64,
    ty: Type,
}

/// Where a place lives, decided at lowering time. `Indirect` means the
/// pointer-producing ops have been emitted and the pointer is on the stack.
enum PlaceL {
    Local(Local),
    Global { addr: u64, ty: Type },
    Indirect { ty: Type },
}

struct LoopCtx {
    break_patches: Vec<usize>,
    continue_patches: Vec<usize>,
    /// Scope-stack depth just *outside* the loop body; break/continue
    /// retire every scope at or above this depth.
    body_depth: usize,
}

struct Lowerer<'u> {
    unit: &'u TranslationUnit,
    ti: TargetInfo,
    code: Vec<Op>,
    /// Per-op source metadata, pushed in lock step with `code`.
    info: Vec<OpInfo>,
    /// Position stamped onto the next emitted ops (the expression or
    /// statement currently being lowered).
    cur: OpInfo,
    types: Vec<Type>,
    ty_map: HashMap<Type, TyId>,
    strings: Vec<String>,
    str_map: HashMap<String, u32>,
    globals: Vec<IrGlobal>,
    global_map: HashMap<String, (u64, Type)>,
    scopes: Vec<Vec<(String, Local)>>,
    frame_cur: u64,
    func_vars: Vec<(u32, u64)>,
    loops: Vec<LoopCtx>,
}

impl<'u> Lowerer<'u> {
    // --- Small helpers ---

    fn tyid(&mut self, ty: &Type) -> TyId {
        if let Some(&id) = self.ty_map.get(ty) {
            return id;
        }
        let id = self.types.len() as TyId;
        self.types.push(ty.clone());
        self.ty_map.insert(ty.clone(), id);
        id
    }

    fn sid(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.str_map.get(s) {
            return id;
        }
        let id = self.strings.len() as u32;
        self.strings.push(s.to_string());
        self.str_map.insert(s.to_string(), id);
        id
    }

    fn size(&self, ty: &Type) -> u64 {
        size_of(ty, &self.unit.structs, &self.ti)
    }

    /// Access size for indirect loads/stores; `void` is poisoned so the
    /// machine faults exactly where the AST walker's `sizeof(void)` did.
    fn size_or_poison(&self, ty: &Type) -> u64 {
        if ty.is_void() {
            ELEM_POISON
        } else {
            self.size(ty)
        }
    }

    fn emit(&mut self, op: Op) -> usize {
        self.code.push(op);
        self.info.push(OpInfo {
            origin: ConstOrigin::None,
            ..self.cur
        });
        self.code.len() - 1
    }

    /// [`Lowerer::emit`] with an explicit constant provenance (for folded
    /// `sizeof`/`offsetof` constants).
    fn emit_origin(&mut self, op: Op, origin: ConstOrigin) -> usize {
        let at = self.emit(op);
        self.info[at].origin = origin;
        at
    }

    /// Stamps the position subsequently emitted ops are attributed to.
    fn at(&mut self, line: u32, col: u32) {
        self.cur.line = line;
        self.cur.col = col;
    }

    fn here(&self) -> usize {
        self.code.len()
    }

    fn patch(&mut self, at: usize, target: usize) {
        match &mut self.code[at] {
            Op::Jump { target: t }
            | Op::JumpIfZero { target: t }
            | Op::JumpIfNonZero { target: t } => *t = target as u32,
            other => unreachable!("patching non-branch {other:?}"),
        }
    }

    fn unsupported(&mut self, msg: impl Into<String>, line: u32) {
        let msg: String = msg.into();
        self.emit(Op::Unsupported {
            msg: msg.into_boxed_str(),
            line,
        });
    }

    fn bin_meta(&mut self, ta: &Type, tb: &Type) -> BinMeta {
        let ta = ta.decay();
        let tb = tb.decay();
        let elem = |lw: &Self, t: &Type| match t.pointee() {
            Some(p) if p.is_void() => (true, ELEM_POISON),
            Some(p) => (true, lw.size(p)),
            None => (false, 0),
        };
        let (a_ptr, a_elem) = elem(self, &ta);
        let (b_ptr, b_elem) = elem(self, &tb);
        BinMeta {
            ta: self.tyid(&ta),
            tb: self.tyid(&tb),
            a_ptr,
            b_ptr,
            a_elem,
            b_elem,
        }
    }

    // --- Variables and scopes ---

    fn layout_globals(&mut self) {
        let mut cursor = VBASE + GLOBALS_OFF;
        for g in &self.unit.globals {
            let size = self.size(&g.ty).max(1);
            let align = align_of(&g.ty, &self.unit.structs, &self.ti).max(1);
            cursor = cursor.next_multiple_of(align);
            self.globals.push(IrGlobal {
                name: g.name.clone(),
                addr: cursor,
                size,
            });
            self.global_map
                .insert(g.name.clone(), (cursor, g.ty.clone()));
            cursor += size;
        }
    }

    fn define_slot(&mut self, name: &str, ty: &Type) -> Local {
        let size = self.size(ty).max(1);
        let align = align_of(ty, &self.unit.structs, &self.ti).max(1);
        let off = self.frame_cur.next_multiple_of(align);
        self.frame_cur = off + size;
        let local = Local {
            off: off as u32,
            size,
            ty: ty.clone(),
        };
        self.scopes
            .last_mut()
            .expect("active scope")
            .push((name.to_string(), local.clone()));
        self.func_vars.push((local.off, size));
        local
    }

    fn lookup(&self, name: &str) -> Option<PlaceL> {
        for scope in self.scopes.iter().rev() {
            if let Some((_, l)) = scope.iter().rev().find(|(n, _)| n == name) {
                return Some(PlaceL::Local(l.clone()));
            }
        }
        self.global_map.get(name).map(|(addr, ty)| PlaceL::Global {
            addr: *addr,
            ty: ty.clone(),
        })
    }

    fn push_scope(&mut self) {
        self.scopes.push(Vec::new());
    }

    /// Emits `Kill` ops for the top scope's variables and pops it.
    fn pop_scope(&mut self) {
        let scope = self.scopes.pop().expect("scope");
        for (_, l) in &scope {
            self.emit(Op::Kill {
                off: l.off,
                size: l.size,
            });
        }
    }

    /// Emits `Kill` ops for every scope at depth ≥ `depth` without popping
    /// (the `break`/`continue` unwind path — lowering continues in the
    /// scopes, but control flow leaves them).
    fn emit_kills_from(&mut self, depth: usize) {
        let kills: Vec<(u32, u64)> = self.scopes[depth..]
            .iter()
            .rev()
            .flat_map(|s| s.iter().map(|(_, l)| (l.off, l.size)))
            .collect();
        for (off, size) in kills {
            self.emit(Op::Kill { off, size });
        }
    }

    // --- Functions ---

    fn lower_func(&mut self, f: &FuncDef) -> IrFunc {
        self.frame_cur = 0;
        self.func_vars.clear();
        self.scopes = vec![Vec::new()];
        self.loops.clear();
        let entry = self.here();
        let params: Vec<SlotDef> = f
            .params
            .iter()
            .map(|p| {
                let local = self.define_slot(&p.name, &p.ty);
                let ty = self.tyid(&p.ty);
                SlotDef {
                    name: p.name.clone(),
                    off: local.off,
                    size: local.size,
                    ty,
                }
            })
            .collect();
        self.lower_block_scoped(&f.body);
        self.emit(Op::Ret { has_value: false });
        IrFunc {
            name: f.name.clone(),
            entry,
            frame_size: self.frame_cur.next_multiple_of(32),
            line: f.line,
            params,
            vars: std::mem::take(&mut self.func_vars),
        }
    }

    fn lower_global_init(&mut self) -> IrFunc {
        self.scopes = vec![Vec::new()];
        self.frame_cur = 0;
        self.func_vars.clear();
        let entry = self.here();
        let unit = self.unit;
        for g in &unit.globals {
            let Some(init) = &g.init else { continue };
            let (addr, _) = self.global_map[&g.name];
            if let (Type::Array { elem, .. }, ExprKind::StrLit(s)) = (&g.ty, &init.kind) {
                if **elem == Type::char_() {
                    let sid = self.sid(s);
                    self.emit(Op::InitStrGlobal {
                        addr,
                        sid,
                        line: g.line,
                    });
                    continue;
                }
            }
            self.lower_expr(init);
            let ty = self.tyid(&g.ty);
            self.emit(Op::StoreGlobal {
                addr,
                ty,
                line: g.line,
            });
            self.emit(Op::Pop);
        }
        self.emit(Op::Ret { has_value: false });
        IrFunc {
            name: "<global-init>".into(),
            entry,
            frame_size: 0,
            line: 0,
            params: Vec::new(),
            vars: Vec::new(),
        }
    }

    // --- Statements ---

    fn lower_block_scoped(&mut self, b: &Block) {
        self.push_scope();
        for s in &b.stmts {
            self.lower_stmt(s);
        }
        self.pop_scope();
    }

    fn lower_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Decl {
                name,
                ty,
                init,
                line,
            } => {
                self.at(*line, 0);
                let local = self.define_slot(name, ty);
                self.emit(Op::Define {
                    off: local.off,
                    size: local.size,
                });
                let Some(e) = init else { return };
                if let (Type::Array { elem, .. }, ExprKind::StrLit(st)) = (ty, &e.kind) {
                    if **elem == Type::char_() {
                        let sid = self.sid(st);
                        self.emit(Op::InitStrLocal {
                            off: local.off,
                            sid,
                            line: *line,
                        });
                        return;
                    }
                }
                self.lower_value(e);
                if matches!(ty, Type::Ptr { .. }) {
                    let ty_id = self.tyid(ty);
                    self.emit(Op::AdjustPtr { ty: ty_id });
                }
                let ty_id = self.tyid(ty);
                self.emit(Op::StoreLocal {
                    off: local.off,
                    ty: ty_id,
                    line: *line,
                });
                self.emit(Op::Pop);
            }
            Stmt::Expr(e) => {
                self.lower_expr(e);
                self.emit(Op::Pop);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.lower_expr(cond);
                let jz = self.emit(Op::JumpIfZero { target: 0 });
                self.lower_block_scoped(then_branch);
                if let Some(eb) = else_branch {
                    let jend = self.emit(Op::Jump { target: 0 });
                    let lelse = self.here();
                    self.patch(jz, lelse);
                    self.lower_block_scoped(eb);
                    let lend = self.here();
                    self.patch(jend, lend);
                } else {
                    let lend = self.here();
                    self.patch(jz, lend);
                }
            }
            Stmt::While { cond, body } => {
                let lcond = self.here();
                self.lower_expr(cond);
                let jz = self.emit(Op::JumpIfZero { target: 0 });
                self.loops.push(LoopCtx {
                    break_patches: Vec::new(),
                    continue_patches: Vec::new(),
                    body_depth: self.scopes.len(),
                });
                self.lower_block_scoped(body);
                self.emit(Op::Jump {
                    target: lcond as u32,
                });
                let lend = self.here();
                self.patch(jz, lend);
                let ctx = self.loops.pop().expect("loop");
                for p in ctx.break_patches {
                    self.patch(p, lend);
                }
                for p in ctx.continue_patches {
                    self.patch(p, lcond);
                }
            }
            Stmt::DoWhile { body, cond } => {
                let lbody = self.here();
                self.loops.push(LoopCtx {
                    break_patches: Vec::new(),
                    continue_patches: Vec::new(),
                    body_depth: self.scopes.len(),
                });
                self.lower_block_scoped(body);
                let lcond = self.here();
                self.lower_expr(cond);
                self.emit(Op::JumpIfNonZero {
                    target: lbody as u32,
                });
                let lend = self.here();
                let ctx = self.loops.pop().expect("loop");
                for p in ctx.break_patches {
                    self.patch(p, lend);
                }
                for p in ctx.continue_patches {
                    self.patch(p, lcond);
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.push_scope();
                if let Some(i) = init {
                    self.lower_stmt(i);
                }
                let lcond = self.here();
                let jexit = cond.as_ref().map(|c| {
                    self.lower_expr(c);
                    self.emit(Op::JumpIfZero { target: 0 })
                });
                self.loops.push(LoopCtx {
                    break_patches: Vec::new(),
                    continue_patches: Vec::new(),
                    body_depth: self.scopes.len(),
                });
                self.lower_block_scoped(body);
                let lstep = self.here();
                if let Some(st) = step {
                    self.lower_expr(st);
                    self.emit(Op::Pop);
                }
                self.emit(Op::Jump {
                    target: lcond as u32,
                });
                let lexit = self.here();
                if let Some(j) = jexit {
                    self.patch(j, lexit);
                }
                let ctx = self.loops.pop().expect("loop");
                for p in ctx.break_patches {
                    self.patch(p, lexit);
                }
                for p in ctx.continue_patches {
                    self.patch(p, lstep);
                }
                self.pop_scope(); // the for-init scope dies after the loop
            }
            Stmt::Return(e, _) => {
                match e {
                    Some(e) => {
                        self.lower_value(e);
                        self.emit(Op::Ret { has_value: true });
                    }
                    None => {
                        self.emit(Op::Ret { has_value: false });
                    }
                };
            }
            Stmt::Break(_) => {
                if let Some(depth) = self.loops.last().map(|l| l.body_depth) {
                    self.emit_kills_from(depth);
                    let j = self.emit(Op::Jump { target: 0 });
                    self.loops.last_mut().expect("loop").break_patches.push(j);
                } else {
                    // Break outside a loop unwinds to the function's end
                    // (the AST walker returned `int(0)` from the frame).
                    self.emit(Op::Ret { has_value: false });
                }
            }
            Stmt::Continue(_) => {
                if let Some(depth) = self.loops.last().map(|l| l.body_depth) {
                    self.emit_kills_from(depth);
                    let j = self.emit(Op::Jump { target: 0 });
                    self.loops
                        .last_mut()
                        .expect("loop")
                        .continue_patches
                        .push(j);
                } else {
                    self.emit(Op::Ret { has_value: false });
                }
            }
            Stmt::Block(b) => self.lower_block_scoped(b),
        }
    }

    // --- Places ---

    fn lower_place(&mut self, e: &Expr) -> PlaceL {
        self.at(e.line, e.col);
        match &e.kind {
            ExprKind::Ident(name) => self.lookup(name).unwrap_or_else(|| {
                self.unsupported(format!("unbound variable {name}"), e.line);
                PlaceL::Indirect { ty: Type::Void }
            }),
            ExprKind::Unary(UnOp::Deref, inner) => {
                self.lower_ptr(inner);
                let ty = inner.ty.decay().pointee().cloned().expect("checked deref");
                PlaceL::Indirect { ty }
            }
            ExprKind::Index(base, idx) => {
                self.lower_ptr(base);
                self.lower_expr(idx);
                let elem = base.ty.decay().pointee().cloned().expect("checked index");
                let esz = self.size_or_poison(&elem);
                self.emit(Op::PtrIndex {
                    elem: esz,
                    line: e.line,
                });
                PlaceL::Indirect { ty: elem }
            }
            ExprKind::Member { base, field, arrow } => {
                if *arrow {
                    self.lower_ptr(base);
                    let Type::Struct(id) = base.ty.decay().pointee().cloned().expect("checked ->")
                    else {
                        self.unsupported("-> on non-struct", e.line);
                        return PlaceL::Indirect { ty: Type::Void };
                    };
                    let (off, fty) = field_offset(&self.unit.structs, id, field, &self.ti);
                    let fsize = self.size(&fty);
                    self.emit(Op::NarrowField {
                        off,
                        size: fsize,
                        line: e.line,
                    });
                    PlaceL::Indirect { ty: fty }
                } else {
                    let pl = self.lower_place(base);
                    let sty = match &pl {
                        PlaceL::Local(l) => l.ty.clone(),
                        PlaceL::Global { ty, .. } => ty.clone(),
                        PlaceL::Indirect { ty } => ty.clone(),
                    };
                    let Type::Struct(id) = sty else {
                        self.unsupported(". on non-struct", e.line);
                        return PlaceL::Indirect { ty: Type::Void };
                    };
                    let (off, fty) = field_offset(&self.unit.structs, id, field, &self.ti);
                    match pl {
                        PlaceL::Local(l) => PlaceL::Local(Local {
                            off: l.off + off as u32,
                            size: self.size(&fty).max(1),
                            ty: fty,
                        }),
                        PlaceL::Global { addr, .. } => PlaceL::Global {
                            addr: addr + off,
                            ty: fty,
                        },
                        PlaceL::Indirect { .. } => {
                            let fsize = self.size(&fty);
                            self.emit(Op::NarrowField {
                                off,
                                size: fsize,
                                line: e.line,
                            });
                            PlaceL::Indirect { ty: fty }
                        }
                    }
                }
            }
            _ => {
                self.unsupported("expression is not an lvalue", e.line);
                PlaceL::Indirect { ty: Type::Void }
            }
        }
    }

    fn lower_place_load(&mut self, e: &Expr) {
        match self.lower_place(e) {
            PlaceL::Local(l) => {
                let ty = self.tyid(&l.ty);
                self.emit(Op::LoadLocal {
                    off: l.off,
                    ty,
                    line: e.line,
                });
            }
            PlaceL::Global { addr, ty } => {
                let ty = self.tyid(&ty);
                self.emit(Op::LoadGlobal {
                    addr,
                    ty,
                    line: e.line,
                });
            }
            PlaceL::Indirect { ty } => {
                let size = self.size_or_poison(&ty);
                let ty = self.tyid(&ty);
                self.emit(Op::LoadInd {
                    ty,
                    size,
                    line: e.line,
                });
            }
        }
    }

    /// `&place`: whole-object bounds for variables, model-specific
    /// narrowing for members (mirrors the AST walker's `addr_of`).
    fn lower_addr_of(&mut self, e: &Expr) {
        self.at(e.line, e.col);
        match &e.kind {
            ExprKind::Unary(UnOp::Deref, inner) => self.lower_ptr(inner),
            ExprKind::Index(base, idx) => {
                self.lower_ptr(base);
                self.lower_expr(idx);
                let elem = base.ty.decay().pointee().cloned().expect("checked index");
                let esz = self.size_or_poison(&elem);
                self.emit(Op::PtrIndex {
                    elem: esz,
                    line: e.line,
                });
            }
            ExprKind::Member { base, field, arrow } => {
                let id = if *arrow {
                    self.lower_ptr(base);
                    match base.ty.decay().pointee().cloned() {
                        Some(Type::Struct(id)) => id,
                        _ => {
                            self.unsupported("->", e.line);
                            return;
                        }
                    }
                } else {
                    self.lower_addr_of(base);
                    match base.ty.clone() {
                        Type::Struct(id) => id,
                        _ => {
                            self.unsupported(".", e.line);
                            return;
                        }
                    }
                };
                let (off, fty) = field_offset(&self.unit.structs, id, field, &self.ti);
                let fsize = self.size(&fty);
                self.emit(Op::NarrowField {
                    off,
                    size: fsize,
                    line: e.line,
                });
            }
            ExprKind::Ident(name) => match self.lookup(name) {
                Some(PlaceL::Local(l)) => {
                    let ty = self.tyid(&Type::ptr_to(l.ty.clone()));
                    self.emit(Op::AddrLocal {
                        off: l.off,
                        size: l.size,
                        ty,
                    });
                }
                Some(PlaceL::Global { addr, ty }) => {
                    let size = self.size(&ty).max(1);
                    let ty = self.tyid(&Type::ptr_to(ty));
                    self.emit(Op::AddrGlobal { addr, size, ty });
                }
                _ => self.unsupported(format!("unbound variable {name}"), e.line),
            },
            _ => self.unsupported("& of non-lvalue", e.line),
        }
    }

    // --- Expressions ---

    /// AST `eval`: pushes the expression's value.
    fn lower_expr(&mut self, e: &Expr) {
        let line = e.line;
        self.at(e.line, e.col);
        match &e.kind {
            ExprKind::IntLit(v) => {
                let width = if e.ty == Type::long() { 8 } else { 4 };
                self.emit(Op::ConstInt {
                    v: *v,
                    width,
                    signed: true,
                });
            }
            ExprKind::StrLit(s) => {
                let sid = self.sid(s);
                self.emit(Op::ConstStr { sid, line });
            }
            ExprKind::Ident(_) | ExprKind::Index(..) | ExprKind::Member { .. } => {
                if e.ty.is_array() {
                    self.lower_addr_of(e);
                } else {
                    self.lower_place_load(e);
                }
            }
            ExprKind::Unary(op, inner) => match op {
                UnOp::Deref => {
                    if e.ty.is_array() {
                        self.lower_addr_of(e);
                    } else {
                        self.lower_place_load(e);
                    }
                }
                UnOp::Addr => self.lower_addr_of(inner),
                UnOp::Not | UnOp::Neg | UnOp::BitNot => {
                    self.lower_expr(inner);
                    self.emit(Op::Unary { op: *op, line });
                }
            },
            ExprKind::Binary(op, a, b) => match op {
                BinOp::LogAnd => {
                    self.lower_expr(a);
                    let jz = self.emit(Op::JumpIfZero { target: 0 });
                    self.lower_expr(b);
                    self.emit(Op::Truthy);
                    let jend = self.emit(Op::Jump { target: 0 });
                    let lfalse = self.here();
                    self.patch(jz, lfalse);
                    self.emit(Op::ConstInt {
                        v: 0,
                        width: 4,
                        signed: true,
                    });
                    let lend = self.here();
                    self.patch(jend, lend);
                }
                BinOp::LogOr => {
                    self.lower_expr(a);
                    let jnz = self.emit(Op::JumpIfNonZero { target: 0 });
                    self.lower_expr(b);
                    self.emit(Op::Truthy);
                    let jend = self.emit(Op::Jump { target: 0 });
                    let ltrue = self.here();
                    self.patch(jnz, ltrue);
                    self.emit(Op::ConstInt {
                        v: 1,
                        width: 4,
                        signed: true,
                    });
                    let lend = self.here();
                    self.patch(jend, lend);
                }
                _ => {
                    self.lower_value(a);
                    self.lower_value(b);
                    let meta = self.bin_meta(&a.ty, &b.ty);
                    self.emit(Op::Binary {
                        op: *op,
                        meta,
                        line,
                    });
                }
            },
            ExprKind::Assign(op, lhs, rhs) => {
                let pl = self.lower_place(lhs);
                if let Some(op) = op {
                    // Compound assignment: load the current value through
                    // the place (duplicating the pointer for indirect
                    // places), evaluate the right-hand side, combine.
                    match &pl {
                        PlaceL::Local(l) => {
                            let ty = self.tyid(&l.ty);
                            self.emit(Op::LoadLocal {
                                off: l.off,
                                ty,
                                line,
                            });
                        }
                        PlaceL::Global { addr, ty } => {
                            let ty = self.tyid(&ty.clone());
                            self.emit(Op::LoadGlobal {
                                addr: *addr,
                                ty,
                                line,
                            });
                        }
                        PlaceL::Indirect { ty } => {
                            let size = self.size_or_poison(ty);
                            let ty = self.tyid(&ty.clone());
                            self.emit(Op::Dup);
                            self.emit(Op::LoadInd { ty, size, line });
                        }
                    }
                    self.lower_expr(rhs);
                    let meta = self.bin_meta(&lhs.ty, &rhs.ty);
                    self.emit(Op::Binary {
                        op: *op,
                        meta,
                        line,
                    });
                } else {
                    self.lower_expr(rhs);
                }
                self.emit_store_converted(&pl, line);
            }
            ExprKind::Ternary(c, a, b) => {
                self.lower_expr(c);
                let jz = self.emit(Op::JumpIfZero { target: 0 });
                self.lower_expr(a);
                let jend = self.emit(Op::Jump { target: 0 });
                let lelse = self.here();
                self.patch(jz, lelse);
                self.lower_expr(b);
                let lend = self.here();
                self.patch(jend, lend);
            }
            ExprKind::Call(name, args) => self.lower_call(name, args, line),
            ExprKind::Cast(ty, inner) => {
                self.lower_expr(inner);
                let to = self.tyid(ty);
                self.emit(Op::Cast { to, line });
            }
            ExprKind::SizeofType(ty) => {
                let v = self.size(ty) as i64;
                self.emit_origin(
                    Op::ConstInt {
                        v,
                        width: 8,
                        signed: false,
                    },
                    ConstOrigin::Sizeof,
                );
            }
            ExprKind::SizeofExpr(inner) => {
                let v = self.size(&inner.ty) as i64;
                self.emit_origin(
                    Op::ConstInt {
                        v,
                        width: 8,
                        signed: false,
                    },
                    ConstOrigin::Sizeof,
                );
            }
            ExprKind::Offsetof(ty, field) => {
                let Type::Struct(id) = ty else {
                    self.unsupported("offsetof", line);
                    return;
                };
                let (off, _) = field_offset(&self.unit.structs, *id, field, &self.ti);
                self.emit_origin(
                    Op::ConstInt {
                        v: off as i64,
                        width: 8,
                        signed: false,
                    },
                    ConstOrigin::Offsetof,
                );
            }
            ExprKind::IncDec { pre, inc, target } => {
                let pl = self.lower_place(target);
                let pl_ty = match &pl {
                    PlaceL::Local(l) => l.ty.clone(),
                    PlaceL::Global { ty, .. } | PlaceL::Indirect { ty } => ty.clone(),
                };
                let meta = self.bin_meta(&pl_ty, &Type::long());
                match pl {
                    PlaceL::Local(l) => {
                        let ty = self.tyid(&l.ty);
                        self.emit(Op::IncDecLocal {
                            off: l.off,
                            ty,
                            meta,
                            pre: *pre,
                            inc: *inc,
                            line,
                        });
                    }
                    PlaceL::Global { addr, ty } => {
                        let ty = self.tyid(&ty);
                        self.emit(Op::IncDecGlobal {
                            addr,
                            ty,
                            meta,
                            pre: *pre,
                            inc: *inc,
                            line,
                        });
                    }
                    PlaceL::Indirect { ty } => {
                        let size = self.size_or_poison(&ty);
                        let ty = self.tyid(&ty);
                        self.emit(Op::IncDecInd {
                            ty,
                            size,
                            meta,
                            pre: *pre,
                            inc: *inc,
                            line,
                        });
                    }
                }
            }
        }
    }

    /// AST `eval` plus the forced array decay applied at initializers,
    /// arguments, returns and binary operands.
    fn lower_value(&mut self, e: &Expr) {
        if e.ty.is_array() {
            self.lower_addr_of(e);
        } else {
            self.lower_expr(e);
        }
    }

    /// AST `eval_ptr`: the value must end up a pointer (integers are
    /// reconstructed through the model).
    fn lower_ptr(&mut self, e: &Expr) {
        if e.ty.is_array() {
            self.lower_addr_of(e);
            return;
        }
        self.lower_expr(e);
        let ty = self.tyid(&e.ty);
        self.emit(Op::ToPtr { ty, line: e.line });
    }

    /// Conversion + store + result for assignments: `convert_for_store`
    /// then the place-appropriate store op (which leaves the stored value
    /// on the stack as the assignment's result).
    fn emit_store_converted(&mut self, pl: &PlaceL, line: u32) {
        let ty = match pl {
            PlaceL::Local(l) => &l.ty,
            PlaceL::Global { ty, .. } | PlaceL::Indirect { ty } => ty,
        };
        if let Type::Int { width, signed } = ty {
            self.emit(Op::ConvertStore {
                width: *width,
                signed: *signed,
            });
        }
        match pl {
            PlaceL::Local(l) => {
                let ty = self.tyid(&l.ty);
                self.emit(Op::StoreLocal {
                    off: l.off,
                    ty,
                    line,
                });
            }
            PlaceL::Global { addr, ty } => {
                let ty = self.tyid(&ty.clone());
                self.emit(Op::StoreGlobal {
                    addr: *addr,
                    ty,
                    line,
                });
            }
            PlaceL::Indirect { ty } => {
                let size = self.size_or_poison(ty);
                let ty = self.tyid(&ty.clone());
                self.emit(Op::StoreInd { ty, size, line });
            }
        }
    }

    // --- Calls ---

    fn lower_call(&mut self, name: &str, args: &[Expr], line: u32) {
        // User definitions win over builtins, as in the AST walker.
        if let Some(fid) = self.unit.funcs.iter().position(|f| f.name == name) {
            let params: Vec<Type> = self.unit.funcs[fid]
                .params
                .iter()
                .map(|p| p.ty.clone())
                .collect();
            for (arg, pty) in args.iter().zip(&params) {
                self.lower_value(arg);
                if matches!(pty, Type::Ptr { .. }) {
                    let ty = self.tyid(pty);
                    self.emit(Op::AdjustPtr { ty });
                }
            }
            self.emit(Op::Call {
                f: fid as u32,
                line,
            });
            return;
        }
        let b = match name {
            "malloc" => {
                self.lower_expr(&args[0]);
                Builtin::Malloc
            }
            "free" => {
                self.lower_expr(&args[0]);
                Builtin::Free
            }
            "memcpy" => {
                self.lower_ptr(&args[0]);
                self.lower_ptr(&args[1]);
                self.lower_expr(&args[2]);
                Builtin::Memcpy
            }
            "memset" => {
                self.lower_ptr(&args[0]);
                self.lower_expr(&args[1]);
                self.lower_expr(&args[2]);
                Builtin::Memset
            }
            "strlen" => {
                self.lower_ptr(&args[0]);
                Builtin::Strlen
            }
            "strcmp" => {
                self.lower_ptr(&args[0]);
                self.lower_ptr(&args[1]);
                Builtin::Strcmp
            }
            "puts" => {
                self.lower_ptr(&args[0]);
                Builtin::Puts
            }
            "putchar" => {
                self.lower_expr(&args[0]);
                Builtin::Putchar
            }
            "putint" => {
                self.lower_expr(&args[0]);
                Builtin::Putint
            }
            "assert" => {
                self.lower_expr(&args[0]);
                Builtin::Assert
            }
            "abort" => Builtin::Abort,
            "clock" => Builtin::Clock,
            _ => {
                self.unsupported(format!("unknown function {name}"), line);
                return;
            }
        };
        self.emit(Op::Builtin { b, line });
    }
}
