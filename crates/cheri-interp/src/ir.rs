//! The flattened execution IR.
//!
//! [`crate::lower`] compiles a checked [`cheri_c::TranslationUnit`] into
//! this form **once per target layout**; the machine then executes the flat
//! op stream for any number of memory models sharing that layout. The
//! lowering resolves everything that does not depend on the model's
//! *pointer semantics*:
//!
//! * variables become frame-slot offsets (no scope-chain hash lookups),
//! * struct layouts and field offsets are pre-computed via
//!   [`crate::layout`] for the target's pointer size,
//! * `sizeof`/`offsetof` are constant-folded,
//! * control flow is lowered to branch targets over a linear op vector,
//! * source lines are carried on every op that can fault, so
//!   [`crate::RtError`] reporting is unchanged.
//!
//! Every *pointer decision* — creation, arithmetic, dereference, integer
//! round trips, spills — remains a call into the active
//! [`crate::MemoryModel`], exactly as in the original AST walker.

use crate::layout::TargetInfo;
use cheri_c::{BinOp, Type, UnOp};

/// Index into [`IrProgram::types`].
pub type TyId = u32;

/// Provenance of a constant-folded [`Op::ConstInt`]: `sizeof`/`offsetof`
/// fold to plain integers during lowering, but static analyses (the
/// **Container** idiom in particular) need to know where the constant came
/// from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ConstOrigin {
    /// An ordinary constant (literal, folded arithmetic).
    #[default]
    None,
    /// Folded from `offsetof(struct, field)`.
    Offsetof,
    /// Folded from `sizeof(type)` or `sizeof expr`.
    Sizeof,
}

/// Per-op source metadata, kept in a side table ([`IrProgram::info`])
/// parallel to [`IrProgram::code`] so the hot `Op` enum stays compact.
#[derive(Clone, Copy, Debug, Default)]
pub struct OpInfo {
    /// 1-based source line of the expression or statement that emitted
    /// the op (best-effort for synthesized ops such as scope kills).
    pub line: u32,
    /// 1-based source column (0 when unknown).
    pub col: u32,
    /// Constant provenance, for [`Op::ConstInt`] only.
    pub origin: ConstOrigin,
}

/// A lowered translation unit for one target layout.
#[derive(Clone, Debug)]
pub struct IrProgram {
    /// The layout the program was lowered for. Models whose
    /// [`crate::MemoryModel::target`] differs need a separate lowering.
    pub target: TargetInfo,
    /// The flat op stream; all functions, back to back.
    pub code: Vec<Op>,
    /// Source metadata for each op, parallel to `code` (same length).
    pub info: Vec<OpInfo>,
    /// Function descriptors, indexed by the `f` field of [`Op::Call`].
    pub funcs: Vec<IrFunc>,
    /// Interned types referenced by ops (for model calls that need them).
    pub types: Vec<Type>,
    /// Interned string literals, referenced by `sid` fields.
    pub strings: Vec<String>,
    /// Global variables with pre-assigned addresses.
    pub globals: Vec<IrGlobal>,
    /// Pseudo-function running the global initializers (always valid; its
    /// body may be just `Ret`).
    pub init_fid: u32,
    /// `char *` — the type of string-literal pointers.
    pub str_ty: TyId,
}

impl IrProgram {
    /// Looks up a lowered function by source name.
    pub fn func_by_name(&self, name: &str) -> Option<u32> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| i as u32)
    }

    /// Total op count (a proxy for compiled size).
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Source metadata for the op at `pc` (zeroed when the side table was
    /// not populated, e.g. hand-built programs).
    pub fn op_info(&self, pc: usize) -> OpInfo {
        self.info.get(pc).copied().unwrap_or_default()
    }

    /// The half-open pc range `[entry, end)` of function `fid`: functions
    /// are lowered back to back, so a function extends to the next entry
    /// point (or the end of the op stream).
    pub fn func_range(&self, fid: u32) -> (usize, usize) {
        let entry = self.funcs[fid as usize].entry;
        let end = self
            .funcs
            .iter()
            .map(|f| f.entry)
            .filter(|&e| e > entry)
            .min()
            .unwrap_or(self.code.len());
        (entry, end)
    }

    /// `true` when no code was generated (never the case after lowering —
    /// the init pseudo-function always exists).
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }
}

/// A lowered function.
#[derive(Clone, Debug)]
pub struct IrFunc {
    /// Source name.
    pub name: String,
    /// Entry pc into [`IrProgram::code`].
    pub entry: usize,
    /// Frame size in bytes (all locals, 32-byte aligned).
    pub frame_size: u64,
    /// Source line of the definition (for call-setup errors).
    pub line: u32,
    /// Parameter slots in declaration order; [`Op::Call`] stores arguments
    /// into these.
    pub params: Vec<SlotDef>,
    /// Every local slot (parameters included) as `(offset, object size)`,
    /// retired wholesale when the frame pops.
    pub vars: Vec<(u32, u64)>,
}

/// A frame slot holding one declared variable.
#[derive(Clone, Debug)]
pub struct SlotDef {
    /// Source name (for unbound-parameter diagnostics).
    pub name: String,
    /// Byte offset from the frame base.
    pub off: u32,
    /// Object size (at least 1).
    pub size: u64,
    /// Declared type.
    pub ty: TyId,
}

/// A global variable with its pre-assigned virtual address.
#[derive(Clone, Debug)]
pub struct IrGlobal {
    /// Source name.
    pub name: String,
    /// Virtual address.
    pub addr: u64,
    /// Object size (at least 1).
    pub size: u64,
}

/// Pre-computed per-operand facts for a lowered binary operation: the
/// decayed static types (for integer→pointer reconstruction) and, when an
/// operand is a pointer, its element size for arithmetic scaling.
#[derive(Clone, Copy, Debug)]
pub struct BinMeta {
    /// Decayed type of the left operand.
    pub ta: TyId,
    /// Decayed type of the right operand.
    pub tb: TyId,
    /// `true` when the left operand is statically a pointer.
    pub a_ptr: bool,
    /// `true` when the right operand is statically a pointer.
    pub b_ptr: bool,
    /// Pointee size when `a_ptr` (meaningless otherwise). [`ELEM_POISON`]
    /// marks a `void` pointee (faults on arithmetic use, like
    /// `sizeof(void)`).
    pub a_elem: u64,
    /// As `a_elem`, for the right operand.
    pub b_elem: u64,
}

/// Element-size sentinel for pointers to `void` (arithmetic on them panics
/// exactly where the AST walker's `sizeof(void)` did).
pub const ELEM_POISON: u64 = u64::MAX;

/// The built-in functions (resolved at lowering; user definitions win).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Builtin {
    /// `malloc(n)`.
    Malloc,
    /// `free(p)`.
    Free,
    /// `memcpy(d, s, n)`.
    Memcpy,
    /// `memset(d, c, n)`.
    Memset,
    /// `strlen(s)`.
    Strlen,
    /// `strcmp(a, b)`.
    Strcmp,
    /// `puts(s)`.
    Puts,
    /// `putchar(c)`.
    Putchar,
    /// `putint(v)`.
    Putint,
    /// `assert(cond)`.
    Assert,
    /// `abort()`.
    Abort,
    /// `clock()`.
    Clock,
}

/// One op of the flat execution IR. The machine maintains a value stack;
/// ops pop operands and push results. `line` fields carry the source line
/// for error reporting.
#[derive(Clone, Debug)]
pub enum Op {
    /// Push an integer constant.
    ConstInt {
        /// The value.
        v: i64,
        /// Width in bytes.
        width: u8,
        /// Signedness.
        signed: bool,
    },
    /// Push a pointer to the interned string literal `sid`.
    ConstStr {
        /// String index.
        sid: u32,
        /// Source line.
        line: u32,
    },
    /// Load a local variable (direct storage, no model dereference).
    LoadLocal {
        /// Frame offset.
        off: u32,
        /// Variable (or member) type.
        ty: TyId,
        /// Source line.
        line: u32,
    },
    /// Load a global variable (direct storage).
    LoadGlobal {
        /// Virtual address.
        addr: u64,
        /// Type.
        ty: TyId,
        /// Source line.
        line: u32,
    },
    /// Pop a value, store it into a local, push the stored value back.
    StoreLocal {
        /// Frame offset.
        off: u32,
        /// Type.
        ty: TyId,
        /// Source line.
        line: u32,
    },
    /// Pop a value, store it into a global, push the stored value back.
    StoreGlobal {
        /// Virtual address.
        addr: u64,
        /// Type.
        ty: TyId,
        /// Source line.
        line: u32,
    },
    /// Push `&local` — a model-made pointer over the whole object.
    AddrLocal {
        /// Frame offset.
        off: u32,
        /// Object size.
        size: u64,
        /// The *pointer* type (pointer-to-variable), for permission
        /// derivation in [`crate::MemoryModel::make_ptr`].
        ty: TyId,
    },
    /// Push `&global`.
    AddrGlobal {
        /// Virtual address.
        addr: u64,
        /// Object size.
        size: u64,
        /// The pointer type.
        ty: TyId,
    },
    /// Pop a pointer, dereference it for reading (model-checked), load a
    /// typed value, push it.
    LoadInd {
        /// Loaded type.
        ty: TyId,
        /// Access size (pre-computed `size_of(ty)`).
        size: u64,
        /// Source line.
        line: u32,
    },
    /// Pop a value then a pointer, dereference for writing, store, push the
    /// value back.
    StoreInd {
        /// Stored type.
        ty: TyId,
        /// Access size.
        size: u64,
        /// Source line.
        line: u32,
    },
    /// Duplicate the top of the value stack.
    Dup,
    /// Discard the top of the value stack.
    Pop,
    /// Pop an index value then a pointer; push `ptr + index * elem`.
    PtrIndex {
        /// Element size.
        elem: u64,
        /// Source line.
        line: u32,
    },
    /// Pop a pointer; push a model-narrowed pointer to a member.
    NarrowField {
        /// Member byte offset.
        off: u64,
        /// Member size.
        size: u64,
        /// Source line.
        line: u32,
    },
    /// Pop a value; if it is an integer, reconstruct a pointer from it via
    /// the model (`int_to_ptr`); push the pointer.
    ToPtr {
        /// The static expression type driving the reconstruction.
        ty: TyId,
        /// Source line.
        line: u32,
    },
    /// If the top of stack is a pointer, re-qualify it for `ty`
    /// (`adjust_for_type`); integers pass through.
    AdjustPtr {
        /// The target pointer type.
        ty: TyId,
    },
    /// Pop a value, apply a (non-place) unary operator, push the result.
    Unary {
        /// The operator (`!`, `-`, `~`).
        op: UnOp,
        /// Source line.
        line: u32,
    },
    /// Pop two values, apply a binary operator, push the result.
    Binary {
        /// The operator.
        op: BinOp,
        /// Pre-computed operand facts.
        meta: BinMeta,
        /// Source line.
        line: u32,
    },
    /// Pop a value, convert it to `to`, push the result.
    Cast {
        /// Target type.
        to: TyId,
        /// Source line.
        line: u32,
    },
    /// Coerce the top of stack for storage into an integer of
    /// `width`/`signed` (the assignment-result conversion).
    ConvertStore {
        /// Target width in bytes.
        width: u8,
        /// Target signedness.
        signed: bool,
    },
    /// Pop a value, push `int(1)` if truthy else `int(0)`.
    Truthy,
    /// Unconditional branch.
    Jump {
        /// Target pc.
        target: u32,
    },
    /// Pop a value; branch when it is falsy.
    JumpIfZero {
        /// Target pc.
        target: u32,
    },
    /// Pop a value; branch when it is truthy.
    JumpIfNonZero {
        /// Target pc.
        target: u32,
    },
    /// Call a lowered function. Pops one argument per parameter (last on
    /// top), pushes the return value when the callee returns.
    Call {
        /// Callee index into [`IrProgram::funcs`].
        f: u32,
        /// Source line of the call.
        line: u32,
    },
    /// Run a built-in. Arguments are on the stack per the builtin's
    /// signature (last on top); pushes the result.
    Builtin {
        /// Which builtin.
        b: Builtin,
        /// Source line.
        line: u32,
    },
    /// Return from the current function, retiring the frame's objects.
    Ret {
        /// `true` when a return value is on the stack.
        has_value: bool,
    },
    /// Register a local's object (declaration reached).
    Define {
        /// Frame offset.
        off: u32,
        /// Object size (at least 1).
        size: u64,
    },
    /// Retire a local's object and shadow entries (scope exited).
    Kill {
        /// Frame offset.
        off: u32,
        /// Object size.
        size: u64,
    },
    /// Copy a string literal (plus NUL) into a local `char[]`.
    InitStrLocal {
        /// Frame offset.
        off: u32,
        /// String index.
        sid: u32,
        /// Source line.
        line: u32,
    },
    /// Copy a string literal (plus NUL) into a global `char[]`.
    InitStrGlobal {
        /// Virtual address.
        addr: u64,
        /// String index.
        sid: u32,
        /// Source line.
        line: u32,
    },
    /// Fused `++`/`--` on a local slot; pushes the pre- or post-value.
    IncDecLocal {
        /// Frame offset.
        off: u32,
        /// Place type.
        ty: TyId,
        /// Operand facts for the `+1`/`-1` addition.
        meta: BinMeta,
        /// Prefix (`true`) or postfix.
        pre: bool,
        /// Increment (`true`) or decrement.
        inc: bool,
        /// Source line.
        line: u32,
    },
    /// Fused `++`/`--` on a global slot; pushes the pre- or post-value.
    IncDecGlobal {
        /// Virtual address.
        addr: u64,
        /// Place type.
        ty: TyId,
        /// Operand facts for the addition.
        meta: BinMeta,
        /// Prefix or postfix.
        pre: bool,
        /// Increment or decrement.
        inc: bool,
        /// Source line.
        line: u32,
    },
    /// Fused `++`/`--` through a pointer on the stack.
    IncDecInd {
        /// Place type.
        ty: TyId,
        /// Access size.
        size: u64,
        /// Operand facts for the addition.
        meta: BinMeta,
        /// Prefix or postfix.
        pre: bool,
        /// Increment or decrement.
        inc: bool,
        /// Source line.
        line: u32,
    },
    /// A construct the interpreter does not support; faults when reached
    /// (preserving the AST walker's lazy-error semantics).
    Unsupported {
        /// Description.
        msg: Box<str>,
        /// Source line.
        line: u32,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_are_reasonably_small() {
        // The hot loop iterates a Vec<Op>; keep variants compact enough
        // that growing one doesn't silently double the dispatch footprint.
        assert!(
            std::mem::size_of::<Op>() <= 72,
            "{}",
            std::mem::size_of::<Op>()
        );
    }

    #[test]
    fn func_lookup_by_name() {
        let prog = IrProgram {
            target: TargetInfo::lp64(),
            code: vec![Op::Ret { has_value: false }],
            info: vec![OpInfo::default()],
            funcs: vec![IrFunc {
                name: "main".into(),
                entry: 0,
                frame_size: 0,
                line: 1,
                params: Vec::new(),
                vars: Vec::new(),
            }],
            types: Vec::new(),
            strings: Vec::new(),
            globals: Vec::new(),
            init_fid: 0,
            str_ty: 0,
        };
        assert_eq!(prog.func_by_name("main"), Some(0));
        assert_eq!(prog.func_by_name("missing"), None);
        assert!(!prog.is_empty());
        assert_eq!(prog.len(), 1);
    }
}
