//! The abstract-machine interpreter core.
//!
//! Owns memory, frames and control flow; delegates every pointer decision
//! to the active [`MemoryModel`]. Objects live in a *virtual* address space
//! based above 4 GiB so that truncating a pointer to 32 bits (the **Wide**
//! idiom) is genuinely lossy, as on any modern 64-bit system.
//!
//! Since the IR refactor the hot loop dispatches over the flattened
//! [`IrProgram`] produced by [`crate::lower`] instead of re-walking the
//! AST: variables are frame slots, layouts are pre-computed, and control
//! flow is branch targets. One lowering per target layout is shared by all
//! models with that layout — see [`LoweredUnit`] and [`run_main_all`].

use crate::ir::{BinMeta, Builtin, IrProgram, Op, ELEM_POISON};
use crate::lower::lower;
use crate::model::{MemoryModel, ModelCtx, ModelError, ModelKind, ShadowEntry};
use crate::value::{IntValue, PtrVal, Value};
use cheri_c::{BinOp, TranslationUnit, Type, UnOp};
use cheri_cap::Capability;
use cheri_mem::{Allocator, TaggedMemory};
use std::collections::{BTreeMap, HashMap};
use std::error::Error;
use std::fmt;

/// Virtual base of the interpreter's address space (above 4 GiB).
pub const VBASE: u64 = 0x4_0000_0000;
const RODATA_OFF: u64 = 0;
pub(crate) const GLOBALS_OFF: u64 = 0x10_0000;
const HEAP_OFF: u64 = 0x20_0000;
const HEAP_SIZE: u64 = 0x40_0000;
const STACK_TOP_OFF: u64 = 0x80_0000;
const PHYS_SIZE: u64 = 0x80_0000;

/// A runtime error: either a memory-model violation (the signal Table 3 is
/// built from) or an ordinary execution failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RtError {
    /// The memory model refused a pointer operation.
    Model {
        /// Source line.
        line: u32,
        /// The violation.
        err: ModelError,
    },
    /// An access fell outside every mapped region (wild pointer on an
    /// unchecked model — the "segmentation fault" analogue).
    Unmapped {
        /// Source line.
        line: u32,
        /// The faulting virtual address.
        addr: u64,
    },
    /// `assert` failed.
    AssertFailed {
        /// Source line.
        line: u32,
    },
    /// `abort()` was called.
    Abort {
        /// Source line.
        line: u32,
    },
    /// Integer division by zero.
    DivByZero {
        /// Source line.
        line: u32,
    },
    /// Heap misuse (double free, free of non-allocation).
    BadFree {
        /// Source line.
        line: u32,
        /// The address passed to `free`.
        addr: u64,
    },
    /// The program has no `main`.
    NoMain,
    /// The step budget was exhausted.
    StepLimit,
    /// A construct the interpreter does not support.
    Unsupported {
        /// Source line.
        line: u32,
        /// Description.
        msg: String,
    },
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::Model { line, err } => write!(f, "line {line}: {err}"),
            RtError::Unmapped { line, addr } => {
                write!(f, "line {line}: unmapped access at {addr:#x}")
            }
            RtError::AssertFailed { line } => write!(f, "line {line}: assertion failed"),
            RtError::Abort { line } => write!(f, "line {line}: abort() called"),
            RtError::DivByZero { line } => write!(f, "line {line}: division by zero"),
            RtError::BadFree { line, addr } => write!(f, "line {line}: bad free of {addr:#x}"),
            RtError::NoMain => write!(f, "program has no main()"),
            RtError::StepLimit => write!(f, "interpreter step limit exceeded"),
            RtError::Unsupported { line, msg } => write!(f, "line {line}: unsupported: {msg}"),
        }
    }
}

impl Error for RtError {}

/// Result of running a program to completion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecResult {
    /// `main`'s return value.
    pub exit_code: i64,
    /// Everything printed via `puts`/`putchar`/`putint`.
    pub output: String,
    /// Evaluation steps consumed.
    pub steps: u64,
}

/// Parses nothing, interprets a checked [`TranslationUnit`] under `kind`.
///
/// # Errors
///
/// Any [`RtError`], most interestingly [`RtError::Model`] when the chosen
/// interpretation of the C abstract machine rejects an idiom.
pub fn run_main(unit: &TranslationUnit, kind: ModelKind) -> Result<ExecResult, RtError> {
    Interp::new(unit, kind.build()).run("main")
}

/// Runs `main` under **all seven** models, sharing one lowering per target
/// layout and fanning the independent model runs out across scoped
/// threads. Results come back in [`ModelKind::ALL`] order regardless of
/// which thread finishes first.
pub fn run_main_all(unit: &TranslationUnit) -> Vec<(ModelKind, Result<ExecResult, RtError>)> {
    LoweredUnit::new(unit).run_all()
}

/// A translation unit lowered once per target layout (LP64 and CHERI),
/// ready to run under any model — the compile cost is amortized across the
/// seven-model differential harness instead of being paid per run.
pub struct LoweredUnit {
    lp64: IrProgram,
    cheri: IrProgram,
}

impl LoweredUnit {
    /// Lowers `unit` for both target layouts.
    pub fn new(unit: &TranslationUnit) -> LoweredUnit {
        LoweredUnit {
            lp64: lower(unit, crate::layout::TargetInfo::lp64()),
            cheri: lower(unit, crate::layout::TargetInfo::cheri()),
        }
    }

    /// The lowering matching `ti`.
    ///
    /// # Panics
    ///
    /// Panics for a target layout other than the two the built-in models
    /// use (LP64 and CHERI).
    pub fn for_target(&self, ti: &crate::layout::TargetInfo) -> &IrProgram {
        if *ti == self.cheri.target {
            &self.cheri
        } else {
            assert_eq!(*ti, self.lp64.target, "unknown target layout {ti:?}");
            &self.lp64
        }
    }

    /// Runs `main` under `kind` using the shared lowering.
    ///
    /// # Errors
    ///
    /// Any [`RtError`].
    pub fn run(&self, kind: ModelKind) -> Result<ExecResult, RtError> {
        let model = kind.build();
        let ir = self.for_target(&model.target());
        Interp::with_ir(ir, model).run("main")
    }

    /// Runs `main` under every model, one scoped thread per model (inline
    /// on single-core hosts), with deterministic [`ModelKind::ALL`] result
    /// ordering regardless of completion order.
    pub fn run_all(&self) -> Vec<(ModelKind, Result<ExecResult, RtError>)> {
        let results = crate::par::fan_out_ordered(&ModelKind::ALL, |&k| self.run(k));
        ModelKind::ALL.into_iter().zip(results).collect()
    }
}

// A fresh 8 MiB zeroed TaggedMemory costs more than interpreting a typical
// idiom case; runs only touch a few 64 KiB chunks of it. `TaggedMemory`
// itself recycles retired backing stores through a global pool (dirty
// chunks re-zeroed on reuse), so dropping a `State` and constructing the
// next one rehits warm memory — including across the fan-out paths'
// short-lived scoped threads.

// --- The interpreter ----------------------------------------------------

enum IrRef<'p> {
    Owned(Box<IrProgram>),
    Borrowed(&'p IrProgram),
}

impl IrRef<'_> {
    fn get(&self) -> &IrProgram {
        match self {
            IrRef::Owned(p) => p,
            IrRef::Borrowed(p) => p,
        }
    }
}

/// The interpreter. See [`run_main`] for the one-shot entry point and
/// [`Interp::with_ir`] for running a pre-lowered program.
pub struct Interp<'p> {
    ir: IrRef<'p>,
    st: State,
}

impl Interp<'static> {
    /// Builds an interpreter over `unit` with the given model, lowering the
    /// unit for the model's target layout.
    pub fn new(unit: &TranslationUnit, model: Box<dyn MemoryModel>) -> Interp<'static> {
        let ir = lower(unit, model.target());
        Interp {
            ir: IrRef::Owned(Box::new(ir)),
            st: State::new(model),
        }
    }
}

impl<'p> Interp<'p> {
    /// Builds an interpreter over a pre-lowered program (shared, e.g.,
    /// across the differential harness's threads).
    ///
    /// # Panics
    ///
    /// Panics if `ir` was lowered for a different target layout than the
    /// model's.
    pub fn with_ir(ir: &'p IrProgram, model: Box<dyn MemoryModel>) -> Interp<'p> {
        assert_eq!(
            ir.target,
            model.target(),
            "IR was lowered for a different target layout than the model's"
        );
        Interp {
            ir: IrRef::Borrowed(ir),
            st: State::new(model),
        }
    }

    /// Overrides the default step budget.
    pub fn with_step_limit(mut self, limit: u64) -> Interp<'p> {
        self.st.step_limit = limit;
        self
    }

    /// Runs function `entry` (usually `main`) with no arguments.
    ///
    /// # Errors
    ///
    /// Any [`RtError`].
    pub fn run(self, entry: &str) -> Result<ExecResult, RtError> {
        let Interp { ir, mut st } = self;
        st.run(ir.get(), entry)
    }
}

struct Frame {
    fid: u32,
    ret_pc: usize,
    base: u64,
    saved_cursor: u64,
    vstack_base: usize,
}

struct State {
    model: Box<dyn MemoryModel>,
    mem: TaggedMemory,
    heap: Allocator,
    objects: BTreeMap<u64, u64>,
    shadow: HashMap<u64, ShadowEntry>,
    stack_cursor: u64,
    rodata_cursor: u64,
    str_addrs: Vec<Option<u64>>,
    output: String,
    steps: u64,
    step_limit: u64,
    vstack: Vec<Value>,
    frames: Vec<Frame>,
}

impl State {
    fn new(model: Box<dyn MemoryModel>) -> State {
        State {
            model,
            mem: TaggedMemory::new(PHYS_SIZE),
            heap: Allocator::new(VBASE + HEAP_OFF, HEAP_SIZE),
            objects: BTreeMap::new(),
            shadow: HashMap::new(),
            stack_cursor: VBASE + STACK_TOP_OFF,
            rodata_cursor: VBASE + RODATA_OFF,
            str_addrs: Vec::new(),
            output: String::new(),
            steps: 0,
            step_limit: 200_000_000,
            vstack: Vec::with_capacity(64),
            frames: Vec::with_capacity(16),
        }
    }

    fn run(&mut self, prog: &IrProgram, entry: &str) -> Result<ExecResult, RtError> {
        self.str_addrs = vec![None; prog.strings.len()];
        for g in &prog.globals {
            self.objects.insert(g.addr, g.size);
        }
        self.exec_call(prog, prog.init_fid)?;
        let fid = prog.func_by_name(entry).ok_or(RtError::NoMain)?;
        let v = self.exec_call(prog, fid)?;
        let exit_code = match v {
            Value::Int(i) => i.as_i64(),
            Value::Ptr(p) => p.addr() as i64,
        };
        Ok(ExecResult {
            exit_code,
            output: std::mem::take(&mut self.output),
            steps: self.steps,
        })
    }

    // --- Memory plumbing ---

    fn mem(&self) -> &TaggedMemory {
        &self.mem
    }

    fn mem_mut(&mut self) -> &mut TaggedMemory {
        &mut self.mem
    }

    fn phys(&self, vaddr: u64, len: u64, line: u32) -> Result<u64, RtError> {
        if vaddr < VBASE
            || vaddr.wrapping_add(len) > VBASE + PHYS_SIZE
            || vaddr.wrapping_add(len) < vaddr
        {
            return Err(RtError::Unmapped { line, addr: vaddr });
        }
        Ok(vaddr - VBASE)
    }

    fn read_raw(&self, vaddr: u64, width: u8, line: u32) -> Result<u64, RtError> {
        let p = self.phys(vaddr, width as u64, line)?;
        self.mem()
            .read_uint(p, width)
            .map_err(|_| RtError::Unmapped { line, addr: vaddr })
    }

    fn write_raw(&mut self, vaddr: u64, v: u64, width: u8, line: u32) -> Result<(), RtError> {
        let p = self.phys(vaddr, width as u64, line)?;
        self.mem_mut()
            .write_uint(p, v, width)
            .map_err(|_| RtError::Unmapped { line, addr: vaddr })
    }

    fn ctx(&self) -> ModelCtx<'_> {
        ModelCtx {
            objects: &self.objects,
        }
    }

    fn model_err(&self, line: u32, err: ModelError) -> RtError {
        RtError::Model { line, err }
    }

    /// Loads a typed value from variable-or-checked storage.
    fn load_typed(&mut self, vaddr: u64, ty: &Type, line: u32) -> Result<Value, RtError> {
        match ty {
            Type::Int { width, signed } => {
                let raw = self.read_raw(vaddr, *width, line)?;
                let mut iv = IntValue {
                    v: raw,
                    width: *width,
                    signed: *signed,
                    prov: None,
                }
                .normalized();
                if *width == 8 && self.model.uses_shadow() {
                    if let Some(e) = self.shadow.get(&vaddr) {
                        if e.bits == iv.v {
                            iv.prov = Some(crate::value::Prov {
                                base: e.base,
                                len: e.len,
                                modified: false,
                            });
                        }
                    }
                }
                Ok(Value::Int(iv))
            }
            Type::IntPtr { signed } | Type::IntCap { signed } => {
                if self.model.stores_caps() {
                    let p = self.phys(vaddr, 32, line)?;
                    let c = self
                        .mem()
                        .read_cap(p)
                        .map_err(|_| RtError::Unmapped { line, addr: vaddr })?;
                    Ok(Value::Ptr(PtrVal::Cap(c)))
                } else {
                    self.load_typed(
                        vaddr,
                        &Type::Int {
                            width: 8,
                            signed: *signed,
                        },
                        line,
                    )
                }
            }
            Type::Ptr { .. } => {
                if self.model.stores_caps() {
                    let p = self.phys(vaddr, 32, line)?;
                    let c = self
                        .mem()
                        .read_cap(p)
                        .map_err(|_| RtError::Unmapped { line, addr: vaddr })?;
                    Ok(Value::Ptr(PtrVal::Cap(c)))
                } else {
                    let bits = self.read_raw(vaddr, 8, line)?;
                    let shadow = self.shadow.get(&vaddr).copied();
                    Ok(Value::Ptr(self.model.load_ptr_bits(
                        &self.ctx(),
                        bits,
                        shadow.as_ref(),
                    )))
                }
            }
            Type::Array { .. } | Type::Struct(_) | Type::Void => Err(RtError::Unsupported {
                line,
                msg: format!("loading aggregate of type {ty} by value"),
            }),
        }
    }

    /// Stores a typed value into variable-or-checked storage.
    fn store_typed(&mut self, vaddr: u64, ty: &Type, val: Value, line: u32) -> Result<(), RtError> {
        match ty {
            Type::Int { width, signed } => {
                let iv = self.coerce_int(val, *width, *signed);
                self.write_raw(vaddr, iv.v, *width, line)?;
                if self.model.uses_shadow() {
                    match iv.prov {
                        Some(p) if *width == 8 && !p.modified => {
                            self.shadow.insert(
                                vaddr,
                                ShadowEntry {
                                    bits: iv.v,
                                    base: p.base,
                                    len: p.len,
                                },
                            );
                        }
                        _ => {
                            self.shadow.remove(&vaddr);
                        }
                    }
                }
                Ok(())
            }
            Type::IntPtr { signed } | Type::IntCap { signed } => {
                if self.model.stores_caps() {
                    let c = match val {
                        Value::Ptr(PtrVal::Cap(c)) => c,
                        Value::Ptr(p) => Capability::from_int(p.addr()),
                        Value::Int(i) => Capability::from_int(i.v),
                    };
                    let p = self.phys(vaddr, 32, line)?;
                    self.mem_mut()
                        .write_cap(p, &c)
                        .map_err(|_| RtError::Unmapped { line, addr: vaddr })
                } else {
                    let as_int = match val {
                        Value::Int(i) => Value::Int(IntValue {
                            width: 8,
                            signed: *signed,
                            ..i
                        }),
                        other => other,
                    };
                    self.store_typed(
                        vaddr,
                        &Type::Int {
                            width: 8,
                            signed: *signed,
                        },
                        as_int,
                        line,
                    )
                }
            }
            Type::Ptr { .. } => {
                let pv = match val {
                    Value::Ptr(p) => self.model.adjust_for_type(p, ty),
                    Value::Int(i) => self
                        .model
                        .int_to_ptr(&self.ctx(), &i, ty)
                        .map_err(|e| self.model_err(line, e))?,
                };
                if self.model.stores_caps() {
                    let c = match pv {
                        PtrVal::Cap(c) => c,
                        other => Capability::from_int(other.addr()),
                    };
                    let p = self.phys(vaddr, 32, line)?;
                    self.mem_mut()
                        .write_cap(p, &c)
                        .map_err(|_| RtError::Unmapped { line, addr: vaddr })
                } else {
                    let bits = pv.addr();
                    self.write_raw(vaddr, bits, 8, line)?;
                    if self.model.uses_shadow() {
                        match pv {
                            PtrVal::Fat { base, len, .. } if len > 0 => {
                                self.shadow.insert(vaddr, ShadowEntry { bits, base, len });
                            }
                            _ => {
                                self.shadow.remove(&vaddr);
                            }
                        }
                    }
                    Ok(())
                }
            }
            Type::Array { .. } | Type::Struct(_) | Type::Void => Err(RtError::Unsupported {
                line,
                msg: format!("storing aggregate of type {ty} by value"),
            }),
        }
    }

    fn coerce_int(&self, val: Value, width: u8, signed: bool) -> IntValue {
        match val {
            Value::Int(i) => {
                let keep_prov = width == 8;
                let mut out = IntValue {
                    v: i.v,
                    width,
                    signed,
                    prov: None,
                }
                .normalized();
                if keep_prov {
                    out.prov = i.prov;
                }
                out
            }
            Value::Ptr(p) => IntValue::new(p.addr() as i64, width, signed),
        }
    }

    fn copy_bytes(&mut self, dst: u64, src: u64, len: u64, line: u32) -> Result<(), RtError> {
        let pd = self.phys(dst, len, line)?;
        let ps = self.phys(src, len, line)?;
        self.mem_mut()
            .memcpy(pd, ps, len)
            .map_err(|_| RtError::Unmapped { line, addr: dst })?;
        if self.model.uses_shadow() {
            // Mirror the shadow space for aligned word copies, as
            // HardBound's hardware copy does.
            let moved: Vec<(u64, ShadowEntry)> = self
                .shadow
                .iter()
                .filter(|(&a, _)| a >= src && a + 8 <= src + len && (a - src) % 8 == 0)
                .map(|(&a, &e)| (dst + (a - src), e))
                .collect();
            for a in dst..dst + len {
                self.shadow.remove(&a);
            }
            for (a, e) in moved {
                if (a - dst) % 8 == (src % 8).wrapping_sub(dst % 8) % 8 || dst % 8 == src % 8 {
                    self.shadow.insert(a, e);
                }
            }
        }
        Ok(())
    }

    // --- Value-stack helpers ---

    fn pop(&mut self) -> Value {
        self.vstack
            .pop()
            .expect("value on stack (lowering invariant)")
    }

    fn pop_ptr(&mut self) -> PtrVal {
        match self.pop() {
            Value::Ptr(p) => p,
            Value::Int(_) => unreachable!("lowering routes pointers through ToPtr"),
        }
    }

    fn frame_base(&self) -> u64 {
        self.frames.last().expect("active frame").base
    }

    fn tick(&mut self) -> Result<(), RtError> {
        self.steps += 1;
        if self.steps > self.step_limit {
            return Err(RtError::StepLimit);
        }
        Ok(())
    }

    /// The access size for an indirect load/store; `void` places fault like
    /// the AST walker's `sizeof(void)` did.
    fn checked_size(size: u64) -> u64 {
        assert!(size != ELEM_POISON, "sizeof(void)");
        size
    }

    // --- Frames ---

    fn push_frame(
        &mut self,
        prog: &IrProgram,
        fid: u32,
        argc: usize,
        ret_pc: usize,
        call_line: u32,
    ) -> Result<usize, RtError> {
        let f = &prog.funcs[fid as usize];
        if self.frames.len() > 400 {
            return Err(RtError::Unsupported {
                line: call_line,
                msg: "call depth exceeded".into(),
            });
        }
        // Internal calls are arity-checked by sema; only the entry
        // invocation (zero arguments) can under-supply. A parameter with
        // no argument would otherwise read silently-zeroed frame memory.
        if argc < f.params.len() {
            return Err(RtError::Unsupported {
                line: f.line,
                msg: format!("unbound variable {}", f.params[argc].name),
            });
        }
        let saved = self.stack_cursor;
        let base = (saved - f.frame_size) & !31;
        if f.frame_size > 0 && base < VBASE + STACK_TOP_OFF - 0x20_0000 {
            return Err(RtError::Unsupported {
                line: f.line,
                msg: "stack overflow".into(),
            });
        }
        self.stack_cursor = base;
        let argv: Vec<Value> = self.vstack.split_off(self.vstack.len() - argc);
        let vstack_base = self.vstack.len();
        self.frames.push(Frame {
            fid,
            ret_pc,
            base,
            saved_cursor: saved,
            vstack_base,
        });
        for (slot, v) in f.params.iter().zip(argv) {
            let addr = base + slot.off as u64;
            self.objects.insert(addr, slot.size);
            let ty = &prog.types[slot.ty as usize];
            self.store_typed(addr, ty, v, f.line)?;
        }
        Ok(f.entry)
    }

    // --- The dispatch loop ---

    #[allow(clippy::too_many_lines)]
    fn exec_call(&mut self, prog: &IrProgram, fid: u32) -> Result<Value, RtError> {
        let f = &prog.funcs[fid as usize];
        let mut pc = self.push_frame(prog, fid, 0, usize::MAX, f.line)?;
        loop {
            self.tick()?;
            match &prog.code[pc] {
                Op::ConstInt { v, width, signed } => {
                    self.vstack
                        .push(Value::Int(IntValue::new(*v, *width, *signed)));
                }
                Op::ConstStr { sid, line } => {
                    let addr = self.intern(prog, *sid, *line)?;
                    let len = prog.strings[*sid as usize].len() as u64 + 1;
                    let ty = &prog.types[prog.str_ty as usize];
                    self.vstack
                        .push(Value::Ptr(self.model.make_ptr(addr, len, ty)));
                }
                Op::LoadLocal { off, ty, line } => {
                    let addr = self.frame_base() + *off as u64;
                    let ty = &prog.types[*ty as usize];
                    let v = self.load_typed(addr, ty, *line)?;
                    self.vstack.push(v);
                }
                Op::LoadGlobal { addr, ty, line } => {
                    let ty = &prog.types[*ty as usize];
                    let v = self.load_typed(*addr, ty, *line)?;
                    self.vstack.push(v);
                }
                Op::StoreLocal { off, ty, line } => {
                    let addr = self.frame_base() + *off as u64;
                    let ty = &prog.types[*ty as usize];
                    let v = self.pop();
                    self.store_typed(addr, ty, v, *line)?;
                    self.vstack.push(v);
                }
                Op::StoreGlobal { addr, ty, line } => {
                    let ty = &prog.types[*ty as usize];
                    let v = self.pop();
                    self.store_typed(*addr, ty, v, *line)?;
                    self.vstack.push(v);
                }
                Op::AddrLocal { off, size, ty } => {
                    let addr = self.frame_base() + *off as u64;
                    let ty = &prog.types[*ty as usize];
                    self.vstack
                        .push(Value::Ptr(self.model.make_ptr(addr, *size, ty)));
                }
                Op::AddrGlobal { addr, size, ty } => {
                    let ty = &prog.types[*ty as usize];
                    self.vstack
                        .push(Value::Ptr(self.model.make_ptr(*addr, *size, ty)));
                }
                Op::LoadInd { ty, size, line } => {
                    let size = Self::checked_size(*size);
                    let p = self.pop_ptr();
                    let a = self
                        .model
                        .deref(&self.ctx(), &p, size, false)
                        .map_err(|e| self.model_err(*line, e))?;
                    let ty = &prog.types[*ty as usize];
                    let v = self.load_typed(a, ty, *line)?;
                    self.vstack.push(v);
                }
                Op::StoreInd { ty, size, line } => {
                    let size = Self::checked_size(*size);
                    let v = self.pop();
                    let p = self.pop_ptr();
                    let a = self
                        .model
                        .deref(&self.ctx(), &p, size, true)
                        .map_err(|e| self.model_err(*line, e))?;
                    let ty = &prog.types[*ty as usize];
                    self.store_typed(a, ty, v, *line)?;
                    self.vstack.push(v);
                }
                Op::Dup => {
                    let v = *self.vstack.last().expect("value to duplicate");
                    self.vstack.push(v);
                }
                Op::Pop => {
                    self.pop();
                }
                Op::PtrIndex { elem, line } => {
                    let elem = Self::checked_size(*elem);
                    let idx = self.pop();
                    let p = self.pop_ptr();
                    let delta = (idx.as_u64() as i64).wrapping_mul(elem as i64);
                    let q = self
                        .model
                        .ptr_add(&p, delta)
                        .map_err(|e| self.model_err(*line, e))?;
                    self.vstack.push(Value::Ptr(q));
                }
                Op::NarrowField { off, size, line } => {
                    let p = self.pop_ptr();
                    let q = self
                        .model
                        .narrow_field(&p, *off, *size)
                        .map_err(|e| self.model_err(*line, e))?;
                    self.vstack.push(Value::Ptr(q));
                }
                Op::ToPtr { ty, line } => match self.pop() {
                    Value::Ptr(p) => self.vstack.push(Value::Ptr(p)),
                    Value::Int(i) => {
                        let ty = &prog.types[*ty as usize];
                        let p = self
                            .model
                            .int_to_ptr(&self.ctx(), &i, ty)
                            .map_err(|e| self.model_err(*line, e))?;
                        self.vstack.push(Value::Ptr(p));
                    }
                },
                Op::AdjustPtr { ty } => {
                    if let Value::Ptr(p) = *self.vstack.last().expect("value") {
                        let ty = &prog.types[*ty as usize];
                        let adj = self.model.adjust_for_type(p, ty);
                        *self.vstack.last_mut().expect("value") = Value::Ptr(adj);
                    }
                }
                Op::Unary { op, line } => {
                    let v = self.exec_unary(*op, *line)?;
                    self.vstack.push(v);
                }
                Op::Binary { op, meta, line } => {
                    let vb = self.pop();
                    let va = self.pop();
                    let v = self.apply_binop(prog, *op, va, vb, *meta, *line)?;
                    self.vstack.push(v);
                }
                Op::Cast { to, line } => {
                    let v = self.pop();
                    let to = &prog.types[*to as usize];
                    let v = self.eval_cast(to, v, *line)?;
                    self.vstack.push(v);
                }
                Op::ConvertStore { width, signed } => {
                    let v = self.pop();
                    let iv = self.coerce_int(v, *width, *signed);
                    self.vstack.push(Value::Int(iv));
                }
                Op::Truthy => {
                    let v = self.pop();
                    self.vstack.push(Value::int(i64::from(v.is_truthy())));
                }
                Op::Jump { target } => {
                    pc = *target as usize;
                    continue;
                }
                Op::JumpIfZero { target } => {
                    if !self.pop().is_truthy() {
                        pc = *target as usize;
                        continue;
                    }
                }
                Op::JumpIfNonZero { target } => {
                    if self.pop().is_truthy() {
                        pc = *target as usize;
                        continue;
                    }
                }
                Op::Call { f, line } => {
                    let argc = prog.funcs[*f as usize].params.len();
                    pc = self.push_frame(prog, *f, argc, pc + 1, *line)?;
                    continue;
                }
                Op::Builtin { b, line } => self.exec_builtin(*b, *line)?,
                Op::Ret { has_value } => {
                    let v = if *has_value {
                        self.pop()
                    } else {
                        Value::int(0)
                    };
                    let fr = self.frames.pop().expect("active frame");
                    let f = &prog.funcs[fr.fid as usize];
                    for &(off, _) in &f.vars {
                        self.objects.remove(&(fr.base + off as u64));
                    }
                    if self.model.uses_shadow() && !f.vars.is_empty() {
                        let range = fr.base..fr.base + f.frame_size;
                        self.shadow.retain(|a, _| !range.contains(a));
                    }
                    self.stack_cursor = fr.saved_cursor;
                    self.vstack.truncate(fr.vstack_base);
                    if fr.ret_pc == usize::MAX {
                        return Ok(v);
                    }
                    self.vstack.push(v);
                    pc = fr.ret_pc;
                    continue;
                }
                Op::Define { off, size } => {
                    let addr = self.frame_base() + *off as u64;
                    self.objects.insert(addr, *size);
                }
                Op::Kill { off, size } => {
                    let addr = self.frame_base() + *off as u64;
                    self.objects.remove(&addr);
                    if self.model.uses_shadow() {
                        let range = addr..addr + size;
                        self.shadow.retain(|a, _| !range.contains(a));
                    }
                }
                Op::InitStrLocal { off, sid, line } => {
                    let addr = self.frame_base() + *off as u64;
                    self.write_str_bytes(prog, addr, *sid, *line)?;
                }
                Op::InitStrGlobal { addr, sid, line } => {
                    self.write_str_bytes(prog, *addr, *sid, *line)?;
                }
                Op::IncDecGlobal {
                    addr,
                    ty,
                    meta,
                    pre,
                    inc,
                    line,
                } => {
                    let v = self.exec_incdec_direct(prog, *addr, *ty, *meta, *pre, *inc, *line)?;
                    self.vstack.push(v);
                }
                Op::IncDecLocal {
                    off,
                    ty,
                    meta,
                    pre,
                    inc,
                    line,
                } => {
                    let addr = self.frame_base() + *off as u64;
                    let v = self.exec_incdec_direct(prog, addr, *ty, *meta, *pre, *inc, *line)?;
                    self.vstack.push(v);
                }
                Op::IncDecInd {
                    ty,
                    size,
                    meta,
                    pre,
                    inc,
                    line,
                } => {
                    let size = Self::checked_size(*size);
                    let p = self.pop_ptr();
                    let ty = &prog.types[*ty as usize];
                    let a = self
                        .model
                        .deref(&self.ctx(), &p, size, false)
                        .map_err(|e| self.model_err(*line, e))?;
                    let old = self.load_typed(a, ty, *line)?;
                    let one = Value::Int(IntValue::new(if *inc { 1 } else { -1 }, 8, true));
                    let new = self.apply_binop(prog, BinOp::Add, old, one, *meta, *line)?;
                    let stored = self.convert_for_store(new, ty);
                    let aw = self
                        .model
                        .deref(&self.ctx(), &p, size, true)
                        .map_err(|e| self.model_err(*line, e))?;
                    self.store_typed(aw, ty, stored, *line)?;
                    self.vstack.push(if *pre { stored } else { old });
                }
                Op::Unsupported { msg, line } => {
                    return Err(RtError::Unsupported {
                        line: *line,
                        msg: msg.to_string(),
                    });
                }
            }
            pc += 1;
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_incdec_direct(
        &mut self,
        prog: &IrProgram,
        addr: u64,
        ty: u32,
        meta: BinMeta,
        pre: bool,
        inc: bool,
        line: u32,
    ) -> Result<Value, RtError> {
        let ty = &prog.types[ty as usize];
        let old = self.load_typed(addr, ty, line)?;
        let one = Value::Int(IntValue::new(if inc { 1 } else { -1 }, 8, true));
        let new = self.apply_binop(prog, BinOp::Add, old, one, meta, line)?;
        let stored = self.convert_for_store(new, ty);
        self.store_typed(addr, ty, stored, line)?;
        Ok(if pre { stored } else { old })
    }

    fn convert_for_store(&self, v: Value, ty: &Type) -> Value {
        match ty {
            Type::Int { width, signed } => Value::Int(self.coerce_int(v, *width, *signed)),
            _ => v,
        }
    }

    fn write_str_bytes(
        &mut self,
        prog: &IrProgram,
        addr: u64,
        sid: u32,
        line: u32,
    ) -> Result<(), RtError> {
        let bytes: Vec<u8> = prog.strings[sid as usize]
            .bytes()
            .chain(std::iter::once(0))
            .collect();
        for (i, b) in bytes.iter().enumerate() {
            self.write_raw(addr + i as u64, *b as u64, 1, line)?;
        }
        Ok(())
    }

    fn intern(&mut self, prog: &IrProgram, sid: u32, line: u32) -> Result<u64, RtError> {
        if let Some(addr) = self.str_addrs[sid as usize] {
            return Ok(addr);
        }
        let s = &prog.strings[sid as usize];
        let len = s.len() as u64 + 1;
        let addr = self.rodata_cursor.next_multiple_of(32);
        self.rodata_cursor = addr + len;
        let bytes: Vec<u8> = s.bytes().chain(std::iter::once(0)).collect();
        for (i, b) in bytes.iter().enumerate() {
            self.write_raw(addr + i as u64, *b as u64, 1, line)?;
        }
        self.objects.insert(addr, len);
        self.str_addrs[sid as usize] = Some(addr);
        Ok(addr)
    }

    // --- Operators ---

    fn exec_unary(&mut self, op: UnOp, line: u32) -> Result<Value, RtError> {
        match op {
            UnOp::Not => {
                let v = self.pop();
                Ok(Value::int(i64::from(!v.is_truthy())))
            }
            UnOp::Neg | UnOp::BitNot => {
                let v = self.pop();
                match v {
                    Value::Int(i) => {
                        let r = if op == UnOp::Neg {
                            (i.as_i64()).wrapping_neg()
                        } else {
                            !i.as_i64()
                        };
                        let w = if i.width < 4 { 4 } else { i.width };
                        Ok(Value::Int(IntValue::new(r, w, i.signed).touch_prov()))
                    }
                    Value::Ptr(p) => {
                        // ~ or - on an intcap_t value.
                        self.intcap_arith(line, p, |a| {
                            if op == UnOp::Neg {
                                (a as i64).wrapping_neg() as u64
                            } else {
                                !a
                            }
                        })
                    }
                }
            }
            UnOp::Deref | UnOp::Addr => unreachable!("lowered to place ops"),
        }
    }

    /// Arithmetic on an `intcap_t`: CHERIv3 adjusts the offset so the
    /// address becomes the arithmetic result; CHERIv2 refuses (§5.1).
    fn intcap_arith(
        &mut self,
        line: u32,
        p: PtrVal,
        f: impl FnOnce(u64) -> u64,
    ) -> Result<Value, RtError> {
        if !self.model.intcap_arith_allowed() {
            return Err(self.model_err(
                line,
                ModelError::new("unrepresentable", "arithmetic on intcap_t values"),
            ));
        }
        match p {
            PtrVal::Cap(c) => {
                let new_addr = f(c.address());
                let adjusted = c
                    .set_offset(new_addr.wrapping_sub(c.base()))
                    .map_err(|_| self.model_err(line, ModelError::new("permission", "sealed")))?;
                Ok(Value::Ptr(PtrVal::Cap(adjusted)))
            }
            other => Ok(Value::Ptr(PtrVal::Plain {
                addr: f(other.addr()),
            })),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn apply_binop(
        &mut self,
        prog: &IrProgram,
        op: BinOp,
        va: Value,
        vb: Value,
        meta: BinMeta,
        line: u32,
    ) -> Result<Value, RtError> {
        // Pointer arithmetic / comparison (decided by the static types).
        if meta.a_ptr || meta.b_ptr {
            return self.apply_ptr_binop(prog, op, va, vb, meta, line);
        }
        // intcap_t arithmetic: a capability-carried integer.
        if let Value::Ptr(p) = va {
            let rhs = vb.as_u64();
            return self.intcap_binop(op, p, rhs, false, line);
        }
        if let Value::Ptr(p) = vb {
            let lhs = va.as_u64();
            return self.intcap_binop(op, p, lhs, true, line);
        }
        let (Value::Int(ia), Value::Int(ib)) = (va, vb) else {
            unreachable!()
        };
        let w = ia.width.max(ib.width).max(4);
        let signed = if ia.width == ib.width {
            ia.signed && ib.signed
        } else if ia.width > ib.width {
            ia.signed
        } else {
            ib.signed
        };
        let (x, y) = (ia.v, ib.v);
        let (sx, sy) = (ia.as_i64(), ib.as_i64());
        let r: u64 = match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::Div => {
                if y == 0 {
                    return Err(RtError::DivByZero { line });
                }
                if signed {
                    sx.wrapping_div(sy) as u64
                } else {
                    let (mx, my) = (mask_w(x, w), mask_w(y, w));
                    mx / my
                }
            }
            BinOp::Rem => {
                if y == 0 {
                    return Err(RtError::DivByZero { line });
                }
                if signed {
                    sx.wrapping_rem(sy) as u64
                } else {
                    let (mx, my) = (mask_w(x, w), mask_w(y, w));
                    mx % my
                }
            }
            BinOp::Shl => x.wrapping_shl(y as u32 & 63),
            BinOp::Shr => {
                if signed {
                    (sx >> (y as u32 & 63)) as u64
                } else {
                    mask_w(x, w) >> (y as u32 & 63)
                }
            }
            BinOp::BitAnd => x & y,
            BinOp::BitOr => x | y,
            BinOp::BitXor => x ^ y,
            BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge | BinOp::Eq | BinOp::Ne => {
                let c = if signed {
                    sx.cmp(&sy)
                } else {
                    mask_w(x, w).cmp(&mask_w(y, w))
                };
                let r = match op {
                    BinOp::Lt => c.is_lt(),
                    BinOp::Gt => c.is_gt(),
                    BinOp::Le => c.is_le(),
                    BinOp::Ge => c.is_ge(),
                    BinOp::Eq => c.is_eq(),
                    BinOp::Ne => c.is_ne(),
                    _ => unreachable!(),
                };
                return Ok(Value::int(i64::from(r)));
            }
            BinOp::LogAnd | BinOp::LogOr => unreachable!("lowered to branches"),
        };
        let mut out = IntValue::new(r as i64, w, signed);
        // Provenance survives arithmetic but is marked modified — the
        // HardBound/Strict fail-closed trigger and MPX fail-open trigger.
        out.prov = ia.prov.or(ib.prov).map(|mut p| {
            p.modified = true;
            p
        });
        Ok(Value::Int(out))
    }

    fn intcap_binop(
        &mut self,
        op: BinOp,
        p: PtrVal,
        other: u64,
        swapped: bool,
        line: u32,
    ) -> Result<Value, RtError> {
        if op.is_comparison() {
            let a = if swapped { other } else { p.addr() };
            let b = if swapped { p.addr() } else { other };
            let r = match op {
                BinOp::Lt => a < b,
                BinOp::Gt => a > b,
                BinOp::Le => a <= b,
                BinOp::Ge => a >= b,
                BinOp::Eq => a == b,
                BinOp::Ne => a != b,
                _ => unreachable!(),
            };
            return Ok(Value::int(i64::from(r)));
        }
        self.intcap_arith(line, p, |addr| {
            let (a, b) = if swapped {
                (other, addr)
            } else {
                (addr, other)
            };
            match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Div => a.checked_div(b).unwrap_or(0),
                BinOp::Rem => a.checked_rem(b).unwrap_or(0),
                BinOp::Shl => a.wrapping_shl(b as u32 & 63),
                BinOp::Shr => a.wrapping_shr(b as u32 & 63),
                BinOp::BitAnd => a & b,
                BinOp::BitOr => a | b,
                BinOp::BitXor => a ^ b,
                _ => unreachable!(),
            }
        })
    }

    fn apply_ptr_binop(
        &mut self,
        prog: &IrProgram,
        op: BinOp,
        va: Value,
        vb: Value,
        meta: BinMeta,
        line: u32,
    ) -> Result<Value, RtError> {
        let as_ptr = |s: &mut Self, v: Value, ty: u32| -> Result<PtrVal, RtError> {
            match v {
                Value::Ptr(p) => Ok(p),
                Value::Int(i) => {
                    let ty = &prog.types[ty as usize];
                    s.model
                        .int_to_ptr(&s.ctx(), &i, ty)
                        .map_err(|err| s.model_err(line, err))
                }
            }
        };
        match op {
            BinOp::Add | BinOp::Sub => {
                if meta.a_ptr && meta.b_ptr && op == BinOp::Sub {
                    let pa = as_ptr(self, va, meta.ta)?;
                    let pb = as_ptr(self, vb, meta.tb)?;
                    let diff = self
                        .model
                        .ptr_diff(&pa, &pb)
                        .map_err(|err| self.model_err(line, err))?;
                    let es = Self::checked_size(meta.a_elem).max(1) as i64;
                    return Ok(Value::Int(IntValue::new(diff / es, 8, true)));
                }
                let (pv, elem, iv) = if meta.a_ptr {
                    (as_ptr(self, va, meta.ta)?, meta.a_elem, vb.as_u64() as i64)
                } else {
                    (as_ptr(self, vb, meta.tb)?, meta.b_elem, va.as_u64() as i64)
                };
                let es = Self::checked_size(elem).max(1) as i64;
                let delta = if op == BinOp::Sub { -iv } else { iv }.wrapping_mul(es);
                let q = self
                    .model
                    .ptr_add(&pv, delta)
                    .map_err(|err| self.model_err(line, err))?;
                Ok(Value::Ptr(q))
            }
            BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge | BinOp::Eq | BinOp::Ne => {
                let x = va.as_u64();
                let y = vb.as_u64();
                let r = match op {
                    BinOp::Lt => x < y,
                    BinOp::Gt => x > y,
                    BinOp::Le => x <= y,
                    BinOp::Ge => x >= y,
                    BinOp::Eq => x == y,
                    BinOp::Ne => x != y,
                    _ => unreachable!(),
                };
                Ok(Value::int(i64::from(r)))
            }
            other => Err(RtError::Unsupported {
                line,
                msg: format!("operator {other:?} on pointers"),
            }),
        }
    }

    fn eval_cast(&mut self, to: &Type, v: Value, line: u32) -> Result<Value, RtError> {
        match to {
            Type::Void => Ok(Value::int(0)),
            Type::Int { width, signed } => match v {
                Value::Int(i) => Ok(Value::Int(self.coerce_int(Value::Int(i), *width, *signed))),
                Value::Ptr(p) => self
                    .model
                    .ptr_to_int(&p, *width, *signed)
                    .map(Value::Int)
                    .map_err(|err| self.model_err(line, err)),
            },
            Type::IntPtr { signed } | Type::IntCap { signed } => {
                if self.model.stores_caps() {
                    match v {
                        Value::Ptr(p) => Ok(Value::Ptr(p)),
                        Value::Int(i) => Ok(Value::Ptr(PtrVal::Cap(Capability::from_int(i.v)))),
                    }
                } else {
                    match v {
                        Value::Ptr(p) => self
                            .model
                            .ptr_to_int(&p, 8, *signed)
                            .map(Value::Int)
                            .map_err(|err| self.model_err(line, err)),
                        Value::Int(i) => Ok(Value::Int(self.coerce_int(Value::Int(i), 8, *signed))),
                    }
                }
            }
            Type::Ptr { .. } => match v {
                Value::Ptr(p) => Ok(Value::Ptr(self.model.adjust_for_type(p, to))),
                Value::Int(i) => {
                    let p = self
                        .model
                        .int_to_ptr(&self.ctx(), &i, to)
                        .map_err(|err| self.model_err(line, err))?;
                    Ok(Value::Ptr(self.model.adjust_for_type(p, to)))
                }
            },
            Type::Array { .. } | Type::Struct(_) => Err(RtError::Unsupported {
                line,
                msg: format!("cast to {to}"),
            }),
        }
    }

    // --- Builtins ---

    #[allow(clippy::too_many_lines)]
    fn exec_builtin(&mut self, b: Builtin, line: u32) -> Result<(), RtError> {
        match b {
            Builtin::Malloc => {
                let n = self.pop().as_u64();
                match self.heap.alloc(n) {
                    Ok(addr) => {
                        self.objects.insert(addr, n.max(1));
                        let ty = Type::ptr_to(Type::Void);
                        self.vstack
                            .push(Value::Ptr(self.model.make_ptr(addr, n, &ty)));
                    }
                    Err(_) => self.vstack.push(Value::Ptr(PtrVal::Plain { addr: 0 })),
                }
            }
            Builtin::Free => {
                let addr = self.pop().as_u64();
                if addr == 0 {
                    self.vstack.push(Value::int(0));
                    return Ok(());
                }
                self.heap
                    .free(addr)
                    .map_err(|_| RtError::BadFree { line, addr })?;
                self.objects.remove(&addr);
                self.vstack.push(Value::int(0));
            }
            Builtin::Memcpy => {
                let n = self.pop().as_u64();
                let s = self.pop_ptr();
                let d = self.pop_ptr();
                if n > 0 {
                    let da = self
                        .model
                        .deref(&self.ctx(), &d, n, true)
                        .map_err(|err| self.model_err(line, err))?;
                    let sa = self
                        .model
                        .deref(&self.ctx(), &s, n, false)
                        .map_err(|err| self.model_err(line, err))?;
                    self.copy_bytes(da, sa, n, line)?;
                }
                self.vstack.push(Value::Ptr(d));
            }
            Builtin::Memset => {
                let n = self.pop().as_u64();
                let c = self.pop().as_u64() as u8;
                let d = self.pop_ptr();
                if n > 0 {
                    let da = self
                        .model
                        .deref(&self.ctx(), &d, n, true)
                        .map_err(|err| self.model_err(line, err))?;
                    let pd = self.phys(da, n, line)?;
                    self.mem_mut()
                        .fill(pd, n, c)
                        .map_err(|_| RtError::Unmapped { line, addr: da })?;
                    if self.model.uses_shadow() {
                        for a in da..da + n {
                            self.shadow.remove(&a);
                        }
                    }
                }
                self.vstack.push(Value::Ptr(d));
            }
            Builtin::Strlen => {
                let p = self.pop_ptr();
                let mut n = 0u64;
                loop {
                    let q = self
                        .model
                        .ptr_add(&p, n as i64)
                        .map_err(|e| self.model_err(line, e))?;
                    let a = self
                        .model
                        .deref(&self.ctx(), &q, 1, false)
                        .map_err(|err| self.model_err(line, err))?;
                    if self.read_raw(a, 1, line)? == 0 {
                        break;
                    }
                    n += 1;
                    self.tick()?;
                }
                self.vstack
                    .push(Value::Int(IntValue::new(n as i64, 8, false)));
            }
            Builtin::Strcmp => {
                let pb = self.pop_ptr();
                let pa = self.pop_ptr();
                let mut i = 0i64;
                loop {
                    let qa = self
                        .model
                        .ptr_add(&pa, i)
                        .map_err(|e| self.model_err(line, e))?;
                    let qb = self
                        .model
                        .ptr_add(&pb, i)
                        .map_err(|e| self.model_err(line, e))?;
                    let aa = self
                        .model
                        .deref(&self.ctx(), &qa, 1, false)
                        .map_err(|err| self.model_err(line, err))?;
                    let ab = self
                        .model
                        .deref(&self.ctx(), &qb, 1, false)
                        .map_err(|err| self.model_err(line, err))?;
                    let (ca, cb) = (self.read_raw(aa, 1, line)?, self.read_raw(ab, 1, line)?);
                    if ca != cb {
                        self.vstack.push(Value::int(if ca < cb { -1 } else { 1 }));
                        return Ok(());
                    }
                    if ca == 0 {
                        self.vstack.push(Value::int(0));
                        return Ok(());
                    }
                    i += 1;
                    self.tick()?;
                }
            }
            Builtin::Puts => {
                let p = self.pop_ptr();
                let mut i = 0i64;
                loop {
                    let q = self
                        .model
                        .ptr_add(&p, i)
                        .map_err(|e| self.model_err(line, e))?;
                    let a = self
                        .model
                        .deref(&self.ctx(), &q, 1, false)
                        .map_err(|err| self.model_err(line, err))?;
                    let c = self.read_raw(a, 1, line)?;
                    if c == 0 {
                        break;
                    }
                    self.output.push(c as u8 as char);
                    i += 1;
                    self.tick()?;
                }
                self.output.push('\n');
                self.vstack.push(Value::int(0));
            }
            Builtin::Putchar => {
                let c = self.pop().as_u64();
                self.output.push(c as u8 as char);
                self.vstack.push(Value::int(c as i64));
            }
            Builtin::Putint => {
                let v = self.pop();
                let n = match v {
                    Value::Int(i) => i.as_i64(),
                    Value::Ptr(p) => p.addr() as i64,
                };
                self.output.push_str(&n.to_string());
                self.vstack.push(Value::int(0));
            }
            Builtin::Assert => {
                let v = self.pop();
                if v.is_truthy() {
                    self.vstack.push(Value::int(0));
                } else {
                    return Err(RtError::AssertFailed { line });
                }
            }
            Builtin::Abort => return Err(RtError::Abort { line }),
            Builtin::Clock => {
                self.vstack
                    .push(Value::Int(IntValue::new(self.steps as i64, 8, true)));
            }
        }
        Ok(())
    }
}

fn mask_w(v: u64, w: u8) -> u64 {
    if w >= 8 {
        v
    } else {
        v & ((1u64 << (w * 8)) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str, kind: ModelKind) -> Result<ExecResult, RtError> {
        let unit = cheri_c::parse(src).expect("front end");
        run_main(&unit, kind)
    }

    fn run_all_ok(src: &str, expect: i64) {
        for kind in ModelKind::ALL {
            let r = run(src, kind).unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert_eq!(r.exit_code, expect, "model {kind}");
        }
    }

    #[test]
    fn arithmetic_and_control_flow() {
        run_all_ok(
            "int main(void) {
                int s = 0;
                for (int i = 1; i <= 10; i++) s += i;
                while (s > 54) s--;
                return s;
            }",
            54,
        );
    }

    #[test]
    fn recursion() {
        run_all_ok(
            "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
             int main(void) { return fib(10); }",
            55,
        );
    }

    #[test]
    fn arrays_and_pointers() {
        run_all_ok(
            "int main(void) {
                int a[8];
                for (int i = 0; i < 8; i++) a[i] = i * i;
                int *p = a;
                int s = 0;
                for (int i = 0; i < 8; i++) s += *(p + i);
                return s;
            }",
            140,
        );
    }

    #[test]
    fn structs_and_members() {
        run_all_ok(
            "struct point { int x; int y; };
             int main(void) {
                struct point p;
                p.x = 3; p.y = 4;
                struct point *q = &p;
                return q->x * q->x + q->y * q->y;
             }",
            25,
        );
    }

    #[test]
    fn linked_list_with_malloc() {
        run_all_ok(
            "struct node { int v; struct node *next; };
             int main(void) {
                struct node *head = 0;
                for (int i = 1; i <= 5; i++) {
                    struct node *n = (struct node*)malloc(sizeof(struct node));
                    n->v = i;
                    n->next = head;
                    head = n;
                }
                int s = 0;
                while (head) { s += head->v; struct node *d = head; head = head->next; free(d); }
                return s;
             }",
            15,
        );
    }

    #[test]
    fn unions_type_pun() {
        run_all_ok(
            "union u { unsigned int i; unsigned char b[4]; };
             int main(void) {
                union u v;
                v.i = 0x01020304;
                return v.b[0] + v.b[3];
             }",
            5, // little-endian: 0x04 + 0x01
        );
    }

    #[test]
    fn strings_and_output() {
        let r = run(
            "int main(void) { puts(\"hello\"); putint(42); return (int)strlen(\"abc\"); }",
            ModelKind::CheriV3,
        )
        .unwrap();
        assert_eq!(r.output, "hello\n42");
        assert_eq!(r.exit_code, 3);
    }

    #[test]
    fn globals_initialize() {
        run_all_ok(
            "int g = 40;
             char msg[] = \"hi\";
             int main(void) { return g + msg[1] - 'i' + 2; }",
            42,
        );
    }

    #[test]
    fn sizeof_depends_on_model() {
        let src = "int main(void) { return (int)sizeof(int*); }";
        assert_eq!(run(src, ModelKind::Pdp11).unwrap().exit_code, 8);
        assert_eq!(run(src, ModelKind::CheriV3).unwrap().exit_code, 32);
    }

    #[test]
    fn buffer_overflow_caught_by_safe_models() {
        let src = "int main(void) {
            char *p = (char*)malloc(16);
            p[20] = 1;   /* classic overflow */
            return 0;
        }";
        // The PDP-11 model lets it corrupt the heap silently.
        assert!(run(src, ModelKind::Pdp11).is_ok());
        for kind in [
            ModelKind::HardBound,
            ModelKind::Mpx,
            ModelKind::Relaxed,
            ModelKind::Strict,
            ModelKind::CheriV2,
            ModelKind::CheriV3,
        ] {
            let e = run(src, kind).unwrap_err();
            assert!(
                matches!(e, RtError::Model { .. }),
                "{kind} should catch overflow: {e}"
            );
        }
    }

    #[test]
    fn assert_and_abort() {
        assert!(matches!(
            run("int main(void) { assert(0); return 0; }", ModelKind::Pdp11),
            Err(RtError::AssertFailed { .. })
        ));
        assert!(matches!(
            run("int main(void) { abort(); return 0; }", ModelKind::Pdp11),
            Err(RtError::Abort { .. })
        ));
    }

    #[test]
    fn div_by_zero_reported() {
        assert!(matches!(
            run(
                "int main(void) { int z = 0; return 5 / z; }",
                ModelKind::Pdp11
            ),
            Err(RtError::DivByZero { .. })
        ));
    }

    #[test]
    fn double_free_reported() {
        let e = run(
            "int main(void) { char *p = (char*)malloc(8); free(p); free(p); return 0; }",
            ModelKind::Pdp11,
        )
        .unwrap_err();
        assert!(matches!(e, RtError::BadFree { .. }));
    }

    #[test]
    fn memcpy_copies_pointers_intact() {
        // memcpy must move pointers without knowing they are there (§4).
        run_all_ok(
            "struct holder { int *p; long pad; };
             int main(void) {
                int x = 7;
                struct holder a;
                struct holder b;
                a.p = &x;
                a.pad = 1;
                memcpy(&b, &a, sizeof(struct holder));
                return *b.p;
             }",
            7,
        );
    }

    #[test]
    fn ternary_and_compound_ops() {
        run_all_ok(
            "int main(void) {
                int x = 5;
                x <<= 2;          /* 20 */
                x |= 1;           /* 21 */
                x %= 10;          /* 1 */
                return x > 0 ? x + 41 : -1;
             }",
            42,
        );
    }

    #[test]
    fn pointer_comparisons() {
        run_all_ok(
            "int main(void) {
                int a[4];
                int *p = &a[1];
                int *q = &a[3];
                if (p < q && q > p && p != q && p == p) return 1;
                return 0;
             }",
            1,
        );
    }

    #[test]
    fn step_limit_stops_infinite_loops() {
        let unit = cheri_c::parse("int main(void) { while (1) { } return 0; }").unwrap();
        let r = Interp::new(&unit, ModelKind::Pdp11.build())
            .with_step_limit(10_000)
            .run("main");
        assert!(matches!(r, Err(RtError::StepLimit)));
    }

    #[test]
    fn out_of_bounds_intermediate_models_differ() {
        // Idiom II, straight from the paper.
        let src = "int main(void) {
            int a[4];
            a[2] = 9;
            int *p = a + 9;   /* invalid intermediate */
            p = p - 7;        /* back in bounds */
            return *p;
        }";
        for kind in [
            ModelKind::Pdp11,
            ModelKind::HardBound,
            ModelKind::Mpx,
            ModelKind::Relaxed,
            ModelKind::Strict,
            ModelKind::CheriV3,
        ] {
            assert_eq!(run(src, kind).unwrap().exit_code, 9, "{kind}");
        }
        assert!(run(src, ModelKind::CheriV2).is_err());
    }

    #[test]
    fn wide_idiom_fails_everywhere() {
        // Idiom Wide: pointers do not fit in 32 bits on any 64-bit model.
        let src = "int main(void) {
            int x = 7;
            int *p = &x;
            unsigned int w = (unsigned int)(unsigned long)(int*)p;
            int *q = (int*)(unsigned long)w;
            return *q;
        }";
        for kind in ModelKind::ALL {
            assert!(run(src, kind).is_err(), "{kind} should fail Wide");
        }
    }

    #[test]
    fn output_and_steps_are_reported() {
        let r = run(
            "int main(void) { putchar('x'); return 0; }",
            ModelKind::Pdp11,
        )
        .unwrap();
        assert_eq!(r.output, "x");
        assert!(r.steps > 0);
    }

    // --- IR-specific coverage ---

    #[test]
    fn do_while_break_continue() {
        run_all_ok(
            "int main(void) {
                int s = 0;
                int i = 0;
                do {
                    i++;
                    if (i == 3) continue;
                    if (i > 6) break;
                    s += i;
                } while (i < 100);
                return s;   /* 1+2+4+5+6 = 18 */
             }",
            18,
        );
    }

    #[test]
    fn short_circuit_skips_side_effects() {
        run_all_ok(
            "int hit = 0;
             int touch(void) { hit = 1; return 1; }
             int main(void) {
                int a = 0 && touch();
                int b = 1 || touch();
                return hit * 100 + a * 10 + b;
             }",
            1,
        );
    }

    #[test]
    fn global_incdec_and_compound_assign() {
        run_all_ok(
            "int g = 10;
             int main(void) {
                g++;
                ++g;
                g -= 2;      /* 10 */
                g *= 4;      /* 40 */
                int pre = ++g;   /* 41 */
                int post = g++;  /* 41, g = 42 */
                return g + (pre == 41) + (post == 41) - 2;
             }",
            42,
        );
    }

    #[test]
    fn pointer_incdec_through_deref() {
        run_all_ok(
            "int main(void) {
                int a[4];
                a[0] = 1; a[1] = 2; a[2] = 3; a[3] = 4;
                int *p = a;
                int first = (*p)++;   /* a[0] = 2 */
                p++;
                int second = *p;      /* 2 */
                return first * 10 + second + a[0];  /* 10 + 2 + 2 */
             }",
            14,
        );
    }

    #[test]
    fn entry_function_with_params_reports_unbound() {
        // Nothing supplies main's arguments; reading one must fail loudly
        // (the AST walker errored at first use), never read zeroed memory.
        let e = run("int main(int argc) { return argc; }", ModelKind::Pdp11).unwrap_err();
        assert!(e.to_string().contains("unbound variable argc"), "{e}");
    }

    #[test]
    fn string_literals_are_interned_once() {
        // The same literal must intern to the same rodata address.
        let r = run(
            "int main(void) { return \"abc\" == \"abc\"; }",
            ModelKind::Pdp11,
        )
        .unwrap();
        assert_eq!(r.exit_code, 1);
    }

    #[test]
    fn run_main_all_matches_sequential_runs() {
        let unit = cheri_c::parse(
            "int main(void) {
                char *p = (char*)malloc(16);
                p[20] = 1;
                return 0;
             }",
        )
        .unwrap();
        let parallel = run_main_all(&unit);
        assert_eq!(parallel.len(), 7);
        for ((k, got), expect_kind) in parallel.iter().zip(ModelKind::ALL) {
            assert_eq!(*k, expect_kind, "deterministic ModelKind::ALL ordering");
            let seq = run_main(&unit, *k);
            match (got, &seq) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.exit_code, b.exit_code, "{k}");
                    assert_eq!(a.output, b.output, "{k}");
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "{k}"),
                _ => panic!("{k}: parallel {got:?} vs sequential {seq:?}"),
            }
        }
    }

    #[test]
    fn lowered_unit_shares_ir_across_models() {
        let unit = cheri_c::parse(
            "int sq(int v) { return v * v; }
             int main(void) { return sq(3) + sq(4); }",
        )
        .unwrap();
        let lowered = LoweredUnit::new(&unit);
        for kind in ModelKind::ALL {
            assert_eq!(lowered.run(kind).unwrap().exit_code, 25, "{kind}");
        }
    }

    #[test]
    fn scope_exit_retires_objects_for_relaxed() {
        // A pointer into a dead scope's local must not dereference under
        // Relaxed (live-object lookup) once the scope has exited.
        let src = "int main(void) {
            int *p = 0;
            if (1) { int x = 5; p = &x; }
            return *p;
        }";
        assert!(run(src, ModelKind::Relaxed).is_err());
        assert!(run(src, ModelKind::Pdp11).is_ok());
    }

    #[test]
    fn nested_break_kills_inner_scopes() {
        run_all_ok(
            "int main(void) {
                int s = 0;
                for (int i = 0; i < 10; i++) {
                    int doubled = i * 2;
                    if (i == 3) { int tmp = 100; s += tmp; break; }
                    s += doubled;
                }
                return s;   /* 0+2+4 + 100 */
             }",
            106,
        );
    }
}
