//! The abstract-machine interpreter core.
//!
//! Owns memory, scopes and control flow; delegates every pointer decision
//! to the active [`MemoryModel`]. Objects live in a *virtual* address space
//! based above 4 GiB so that truncating a pointer to 32 bits (the **Wide**
//! idiom) is genuinely lossy, as on any modern 64-bit system.

use crate::layout::{align_of, field_offset, size_of, TargetInfo};
use crate::model::{MemoryModel, ModelCtx, ModelError, ModelKind, ShadowEntry};
use crate::value::{IntValue, PtrVal, Value};
use cheri_c::{BinOp, Block, Expr, ExprKind, FuncDef, Stmt, StructDef, TranslationUnit, Type, UnOp};
use cheri_cap::Capability;
use cheri_mem::{Allocator, TaggedMemory};
use std::collections::{BTreeMap, HashMap};
use std::error::Error;
use std::fmt;

/// Virtual base of the interpreter's address space (above 4 GiB).
pub const VBASE: u64 = 0x4_0000_0000;
const RODATA_OFF: u64 = 0;
const GLOBALS_OFF: u64 = 0x10_0000;
const HEAP_OFF: u64 = 0x20_0000;
const HEAP_SIZE: u64 = 0x40_0000;
const STACK_TOP_OFF: u64 = 0x80_0000;
const PHYS_SIZE: u64 = 0x80_0000;

/// A runtime error: either a memory-model violation (the signal Table 3 is
/// built from) or an ordinary execution failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RtError {
    /// The memory model refused a pointer operation.
    Model {
        /// Source line.
        line: u32,
        /// The violation.
        err: ModelError,
    },
    /// An access fell outside every mapped region (wild pointer on an
    /// unchecked model — the "segmentation fault" analogue).
    Unmapped {
        /// Source line.
        line: u32,
        /// The faulting virtual address.
        addr: u64,
    },
    /// `assert` failed.
    AssertFailed {
        /// Source line.
        line: u32,
    },
    /// `abort()` was called.
    Abort {
        /// Source line.
        line: u32,
    },
    /// Integer division by zero.
    DivByZero {
        /// Source line.
        line: u32,
    },
    /// Heap misuse (double free, free of non-allocation).
    BadFree {
        /// Source line.
        line: u32,
        /// The address passed to `free`.
        addr: u64,
    },
    /// The program has no `main`.
    NoMain,
    /// The step budget was exhausted.
    StepLimit,
    /// A construct the interpreter does not support.
    Unsupported {
        /// Source line.
        line: u32,
        /// Description.
        msg: String,
    },
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::Model { line, err } => write!(f, "line {line}: {err}"),
            RtError::Unmapped { line, addr } => {
                write!(f, "line {line}: unmapped access at {addr:#x}")
            }
            RtError::AssertFailed { line } => write!(f, "line {line}: assertion failed"),
            RtError::Abort { line } => write!(f, "line {line}: abort() called"),
            RtError::DivByZero { line } => write!(f, "line {line}: division by zero"),
            RtError::BadFree { line, addr } => write!(f, "line {line}: bad free of {addr:#x}"),
            RtError::NoMain => write!(f, "program has no main()"),
            RtError::StepLimit => write!(f, "interpreter step limit exceeded"),
            RtError::Unsupported { line, msg } => write!(f, "line {line}: unsupported: {msg}"),
        }
    }
}

impl Error for RtError {}

/// Result of running a program to completion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecResult {
    /// `main`'s return value.
    pub exit_code: i64,
    /// Everything printed via `puts`/`putchar`/`putint`.
    pub output: String,
    /// Evaluation steps consumed.
    pub steps: u64,
}

/// Parses nothing, interprets a checked [`TranslationUnit`] under `kind`.
///
/// # Errors
///
/// Any [`RtError`], most interestingly [`RtError::Model`] when the chosen
/// interpretation of the C abstract machine rejects an idiom.
pub fn run_main(unit: &TranslationUnit, kind: ModelKind) -> Result<ExecResult, RtError> {
    Interp::new(unit, kind.build()).run("main")
}

#[derive(Clone, Debug)]
struct Var {
    addr: u64,
    ty: Type,
    size: u64,
}

enum Flow {
    Normal,
    Break,
    Continue,
    Return(Option<Value>),
}

#[derive(Clone, Debug)]
enum PlacePtr {
    /// Direct variable storage (always valid).
    Var(u64),
    /// Through a pointer; checked by the model at each access.
    Indirect(PtrVal),
}

#[derive(Clone, Debug)]
struct Place {
    ptr: PlacePtr,
    ty: Type,
}

/// The interpreter. See [`run_main`] for the one-shot entry point.
pub struct Interp<'u> {
    unit: &'u TranslationUnit,
    model: Box<dyn MemoryModel>,
    ti: TargetInfo,
    mem: TaggedMemory,
    heap: Allocator,
    objects: BTreeMap<u64, u64>,
    shadow: HashMap<u64, ShadowEntry>,
    globals: HashMap<String, Var>,
    frames: Vec<Vec<HashMap<String, Var>>>,
    frame_bases: Vec<u64>,
    stack_cursor: u64,
    rodata_cursor: u64,
    strings: HashMap<String, u64>,
    output: String,
    steps: u64,
    step_limit: u64,
}

impl<'u> Interp<'u> {
    /// Builds an interpreter over `unit` with the given model.
    pub fn new(unit: &'u TranslationUnit, model: Box<dyn MemoryModel>) -> Interp<'u> {
        let ti = model.target();
        Interp {
            unit,
            model,
            ti,
            mem: TaggedMemory::new(PHYS_SIZE),
            heap: Allocator::new(VBASE + HEAP_OFF, HEAP_SIZE),
            objects: BTreeMap::new(),
            shadow: HashMap::new(),
            globals: HashMap::new(),
            frames: Vec::new(),
            frame_bases: Vec::new(),
            stack_cursor: VBASE + STACK_TOP_OFF,
            rodata_cursor: VBASE + RODATA_OFF,
            strings: HashMap::new(),
            output: String::new(),
            steps: 0,
            step_limit: 200_000_000,
        }
    }

    /// Overrides the default step budget.
    pub fn with_step_limit(mut self, limit: u64) -> Interp<'u> {
        self.step_limit = limit;
        self
    }

    /// Runs function `entry` (usually `main`) with no arguments.
    ///
    /// # Errors
    ///
    /// Any [`RtError`].
    pub fn run(mut self, entry: &str) -> Result<ExecResult, RtError> {
        self.setup_globals()?;
        let f = self.unit.func(entry).ok_or(RtError::NoMain)?;
        let v = self.call_function(f, Vec::new(), f.line)?;
        let exit_code = match v {
            Value::Int(i) => i.as_i64(),
            Value::Ptr(p) => p.addr() as i64,
        };
        Ok(ExecResult { exit_code, output: self.output, steps: self.steps })
    }

    // --- Memory plumbing ---

    fn phys(&self, vaddr: u64, len: u64, line: u32) -> Result<u64, RtError> {
        if vaddr < VBASE || vaddr.wrapping_add(len) > VBASE + PHYS_SIZE || vaddr.wrapping_add(len) < vaddr {
            return Err(RtError::Unmapped { line, addr: vaddr });
        }
        Ok(vaddr - VBASE)
    }

    fn read_raw(&self, vaddr: u64, width: u8, line: u32) -> Result<u64, RtError> {
        let p = self.phys(vaddr, width as u64, line)?;
        self.mem.read_uint(p, width).map_err(|_| RtError::Unmapped { line, addr: vaddr })
    }

    fn write_raw(&mut self, vaddr: u64, v: u64, width: u8, line: u32) -> Result<(), RtError> {
        let p = self.phys(vaddr, width as u64, line)?;
        self.mem
            .write_uint(p, v, width)
            .map_err(|_| RtError::Unmapped { line, addr: vaddr })
    }

    fn type_size(&self, ty: &Type) -> u64 {
        size_of(ty, &self.unit.structs, &self.ti)
    }

    fn type_align(&self, ty: &Type) -> u64 {
        align_of(ty, &self.unit.structs, &self.ti)
    }

    fn structs(&self) -> &[StructDef] {
        &self.unit.structs
    }

    fn ctx(&self) -> ModelCtx<'_> {
        ModelCtx { objects: &self.objects }
    }

    fn model_err(&self, line: u32, err: ModelError) -> RtError {
        RtError::Model { line, err }
    }

    /// Loads a typed value from variable-or-checked storage.
    fn load_typed(&mut self, vaddr: u64, ty: &Type, line: u32) -> Result<Value, RtError> {
        match ty {
            Type::Int { width, signed } => {
                let raw = self.read_raw(vaddr, *width, line)?;
                let mut iv = IntValue { v: raw, width: *width, signed: *signed, prov: None }
                    .normalized();
                if *width == 8 && self.model.uses_shadow() {
                    if let Some(e) = self.shadow.get(&vaddr) {
                        if e.bits == iv.v {
                            iv.prov = Some(crate::value::Prov {
                                base: e.base,
                                len: e.len,
                                modified: false,
                            });
                        }
                    }
                }
                Ok(Value::Int(iv))
            }
            Type::IntPtr { signed } | Type::IntCap { signed } => {
                if self.model.stores_caps() {
                    let p = self.phys(vaddr, 32, line)?;
                    let c = self
                        .mem
                        .read_cap(p)
                        .map_err(|_| RtError::Unmapped { line, addr: vaddr })?;
                    Ok(Value::Ptr(PtrVal::Cap(c)))
                } else {
                    self.load_typed(vaddr, &Type::Int { width: 8, signed: *signed }, line)
                }
            }
            Type::Ptr { .. } => {
                if self.model.stores_caps() {
                    let p = self.phys(vaddr, 32, line)?;
                    let c = self
                        .mem
                        .read_cap(p)
                        .map_err(|_| RtError::Unmapped { line, addr: vaddr })?;
                    Ok(Value::Ptr(PtrVal::Cap(c)))
                } else {
                    let bits = self.read_raw(vaddr, 8, line)?;
                    let shadow = self.shadow.get(&vaddr).copied();
                    Ok(Value::Ptr(self.model.load_ptr_bits(&self.ctx(), bits, shadow.as_ref())))
                }
            }
            Type::Array { .. } | Type::Struct(_) | Type::Void => Err(RtError::Unsupported {
                line,
                msg: format!("loading aggregate of type {ty} by value"),
            }),
        }
    }

    /// Stores a typed value into variable-or-checked storage.
    fn store_typed(&mut self, vaddr: u64, ty: &Type, val: Value, line: u32) -> Result<(), RtError> {
        match ty {
            Type::Int { width, signed } => {
                let iv = self.coerce_int(val, *width, *signed);
                self.write_raw(vaddr, iv.v, *width, line)?;
                if self.model.uses_shadow() {
                    match iv.prov {
                        Some(p) if *width == 8 && !p.modified => {
                            self.shadow
                                .insert(vaddr, ShadowEntry { bits: iv.v, base: p.base, len: p.len });
                        }
                        _ => {
                            self.shadow.remove(&vaddr);
                        }
                    }
                }
                Ok(())
            }
            Type::IntPtr { signed } | Type::IntCap { signed } => {
                if self.model.stores_caps() {
                    let c = match val {
                        Value::Ptr(PtrVal::Cap(c)) => c,
                        Value::Ptr(p) => Capability::from_int(p.addr()),
                        Value::Int(i) => Capability::from_int(i.v),
                    };
                    let p = self.phys(vaddr, 32, line)?;
                    self.mem
                        .write_cap(p, &c)
                        .map_err(|_| RtError::Unmapped { line, addr: vaddr })
                } else {
                    let as_int = match val {
                        Value::Int(i) => Value::Int(IntValue { width: 8, signed: *signed, ..i }),
                        other => other,
                    };
                    self.store_typed(vaddr, &Type::Int { width: 8, signed: *signed }, as_int, line)
                }
            }
            Type::Ptr { .. } => {
                let pv = match val {
                    Value::Ptr(p) => self.model.adjust_for_type(p, ty),
                    Value::Int(i) => self
                        .model
                        .int_to_ptr(&self.ctx(), &i, ty)
                        .map_err(|e| self.model_err(line, e))?,
                };
                if self.model.stores_caps() {
                    let c = match pv {
                        PtrVal::Cap(c) => c,
                        other => Capability::from_int(other.addr()),
                    };
                    let p = self.phys(vaddr, 32, line)?;
                    self.mem
                        .write_cap(p, &c)
                        .map_err(|_| RtError::Unmapped { line, addr: vaddr })
                } else {
                    let bits = pv.addr();
                    self.write_raw(vaddr, bits, 8, line)?;
                    if self.model.uses_shadow() {
                        match pv {
                            PtrVal::Fat { base, len, .. } if len > 0 => {
                                self.shadow.insert(vaddr, ShadowEntry { bits, base, len });
                            }
                            _ => {
                                self.shadow.remove(&vaddr);
                            }
                        }
                    }
                    Ok(())
                }
            }
            Type::Array { .. } | Type::Struct(_) | Type::Void => Err(RtError::Unsupported {
                line,
                msg: format!("storing aggregate of type {ty} by value"),
            }),
        }
    }

    fn coerce_int(&self, val: Value, width: u8, signed: bool) -> IntValue {
        match val {
            Value::Int(i) => {
                let keep_prov = width == 8;
                let mut out = IntValue { v: i.v, width, signed, prov: None }.normalized();
                if keep_prov {
                    out.prov = i.prov;
                }
                out
            }
            Value::Ptr(p) => IntValue::new(p.addr() as i64, width, signed),
        }
    }

    fn copy_bytes(&mut self, dst: u64, src: u64, len: u64, line: u32) -> Result<(), RtError> {
        let pd = self.phys(dst, len, line)?;
        let ps = self.phys(src, len, line)?;
        self.mem
            .memcpy(pd, ps, len)
            .map_err(|_| RtError::Unmapped { line, addr: dst })?;
        if self.model.uses_shadow() {
            // Mirror the shadow space for aligned word copies, as
            // HardBound's hardware copy does.
            let moved: Vec<(u64, ShadowEntry)> = self
                .shadow
                .iter()
                .filter(|(&a, _)| a >= src && a + 8 <= src + len && (a - src) % 8 == 0)
                .map(|(&a, &e)| (dst + (a - src), e))
                .collect();
            for a in dst..dst + len {
                self.shadow.remove(&a);
            }
            for (a, e) in moved {
                if (a - dst) % 8 == (src % 8).wrapping_sub(dst % 8) % 8 || dst % 8 == src % 8 {
                    self.shadow.insert(a, e);
                }
            }
        }
        Ok(())
    }

    // --- Object/variable management ---

    fn alloc_stack(&mut self, size: u64, align: u64) -> u64 {
        let sz = size.max(1);
        let mut a = self.stack_cursor - sz;
        a &= !(align.max(1) - 1);
        self.stack_cursor = a;
        a
    }

    fn define_local(&mut self, name: &str, ty: &Type, line: u32) -> Result<Var, RtError> {
        let size = self.type_size(ty);
        let align = self.type_align(ty);
        let addr = self.alloc_stack(size, align);
        if addr < VBASE + STACK_TOP_OFF - 0x20_0000 {
            return Err(RtError::Unsupported { line, msg: "stack overflow".into() });
        }
        self.objects.insert(addr, size.max(1));
        let var = Var { addr, ty: ty.clone(), size: size.max(1) };
        self.frames
            .last_mut()
            .expect("active frame")
            .last_mut()
            .expect("active scope")
            .insert(name.to_string(), var.clone());
        Ok(var)
    }

    fn lookup_var(&self, name: &str) -> Option<Var> {
        if let Some(scopes) = self.frames.last() {
            for scope in scopes.iter().rev() {
                if let Some(v) = scope.get(name) {
                    return Some(v.clone());
                }
            }
        }
        self.globals.get(name).cloned()
    }

    fn setup_globals(&mut self) -> Result<(), RtError> {
        let mut cursor = VBASE + GLOBALS_OFF;
        for g in &self.unit.globals {
            let size = self.type_size(&g.ty).max(1);
            let align = self.type_align(&g.ty).max(1);
            cursor = cursor.next_multiple_of(align);
            let var = Var { addr: cursor, ty: g.ty.clone(), size };
            self.objects.insert(cursor, size);
            self.globals.insert(g.name.clone(), var);
            cursor += size;
        }
        // Initializers run after all globals have addresses.
        for g in self.unit.globals.clone() {
            let Some(init) = &g.init else { continue };
            let var = self.globals[&g.name].clone();
            if let (Type::Array { elem, .. }, ExprKind::StrLit(s)) = (&g.ty, &init.kind) {
                if **elem == Type::char_() {
                    let bytes: Vec<u8> = s.bytes().chain(std::iter::once(0)).collect();
                    for (i, b) in bytes.iter().enumerate() {
                        self.write_raw(var.addr + i as u64, *b as u64, 1, g.line)?;
                    }
                    continue;
                }
            }
            let v = self.eval(init)?;
            self.store_typed(var.addr, &g.ty, v, g.line)?;
        }
        Ok(())
    }

    fn intern_string(&mut self, s: &str, line: u32) -> Result<PtrVal, RtError> {
        let addr = if let Some(&a) = self.strings.get(s) {
            a
        } else {
            let len = s.len() as u64 + 1;
            let addr = self.rodata_cursor.next_multiple_of(32);
            self.rodata_cursor = addr + len;
            for (i, b) in s.bytes().chain(std::iter::once(0)).enumerate() {
                self.write_raw(addr + i as u64, b as u64, 1, line)?;
            }
            self.objects.insert(addr, len);
            self.strings.insert(s.to_string(), addr);
            addr
        };
        let ty = Type::ptr_to(Type::char_());
        Ok(self.model.make_ptr(addr, s.len() as u64 + 1, &ty))
    }

    // --- Places ---

    fn eval_place(&mut self, e: &Expr) -> Result<Place, RtError> {
        match &e.kind {
            ExprKind::Ident(name) => {
                let var = self.lookup_var(name).ok_or_else(|| RtError::Unsupported {
                    line: e.line,
                    msg: format!("unbound variable {name}"),
                })?;
                Ok(Place { ptr: PlacePtr::Var(var.addr), ty: var.ty })
            }
            ExprKind::Unary(UnOp::Deref, inner) => {
                let p = self.eval_ptr(inner)?;
                let ty = inner.ty.decay().pointee().cloned().expect("checked deref");
                Ok(Place { ptr: PlacePtr::Indirect(p), ty })
            }
            ExprKind::Index(base, idx) => {
                let p = self.eval_ptr(base)?;
                let iv = self.eval(idx)?;
                let elem = base.ty.decay().pointee().cloned().expect("checked index");
                let delta = (iv.as_u64() as i64).wrapping_mul(self.type_size(&elem) as i64);
                let q = self
                    .model
                    .ptr_add(&p, delta)
                    .map_err(|err| self.model_err(e.line, err))?;
                Ok(Place { ptr: PlacePtr::Indirect(q), ty: elem })
            }
            ExprKind::Member { base, field, arrow } => {
                if *arrow {
                    let p = self.eval_ptr(base)?;
                    let Type::Struct(id) = base.ty.decay().pointee().cloned().expect("checked ->")
                    else {
                        return Err(RtError::Unsupported {
                            line: e.line,
                            msg: "-> on non-struct".into(),
                        });
                    };
                    let (off, fty) = field_offset(self.structs(), id, field, &self.ti);
                    let fsize = self.type_size(&fty);
                    let q = self
                        .model
                        .narrow_field(&p, off, fsize)
                        .map_err(|err| self.model_err(e.line, err))?;
                    Ok(Place { ptr: PlacePtr::Indirect(q), ty: fty })
                } else {
                    let pl = self.eval_place(base)?;
                    let Type::Struct(id) = pl.ty else {
                        return Err(RtError::Unsupported {
                            line: e.line,
                            msg: ". on non-struct".into(),
                        });
                    };
                    let (off, fty) = field_offset(self.structs(), id, field, &self.ti);
                    match pl.ptr {
                        PlacePtr::Var(a) => Ok(Place { ptr: PlacePtr::Var(a + off), ty: fty }),
                        PlacePtr::Indirect(p) => {
                            let fsize = self.type_size(&fty);
                            let q = self
                                .model
                                .narrow_field(&p, off, fsize)
                                .map_err(|err| self.model_err(e.line, err))?;
                            Ok(Place { ptr: PlacePtr::Indirect(q), ty: fty })
                        }
                    }
                }
            }
            _ => Err(RtError::Unsupported {
                line: e.line,
                msg: "expression is not an lvalue".into(),
            }),
        }
    }

    fn place_vaddr(&mut self, pl: &Place, write: bool, line: u32) -> Result<u64, RtError> {
        match &pl.ptr {
            PlacePtr::Var(a) => Ok(*a),
            PlacePtr::Indirect(p) => {
                let size = self.type_size(&pl.ty);
                self.model
                    .deref(&self.ctx(), p, size, write)
                    .map_err(|err| self.model_err(line, err))
            }
        }
    }

    fn load_place(&mut self, pl: &Place, line: u32) -> Result<Value, RtError> {
        let a = self.place_vaddr(pl, false, line)?;
        let ty = pl.ty.clone();
        self.load_typed(a, &ty, line)
    }

    fn store_place(&mut self, pl: &Place, v: Value, line: u32) -> Result<(), RtError> {
        let a = self.place_vaddr(pl, true, line)?;
        let ty = pl.ty.clone();
        self.store_typed(a, &ty, v, line)
    }

    /// `&place`: whole-object bounds for variables, model-specific
    /// narrowing for members.
    fn addr_of(&mut self, e: &Expr) -> Result<PtrVal, RtError> {
        match &e.kind {
            ExprKind::Unary(UnOp::Deref, inner) => self.eval_ptr(inner),
            ExprKind::Index(base, idx) => {
                let p = self.eval_ptr(base)?;
                let iv = self.eval(idx)?;
                let elem = base.ty.decay().pointee().cloned().expect("checked index");
                let delta = (iv.as_u64() as i64).wrapping_mul(self.type_size(&elem) as i64);
                self.model.ptr_add(&p, delta).map_err(|err| self.model_err(e.line, err))
            }
            ExprKind::Member { base, field, arrow } => {
                let (p, id) = if *arrow {
                    let p = self.eval_ptr(base)?;
                    let Type::Struct(id) = base.ty.decay().pointee().cloned().expect("checked")
                    else {
                        return Err(RtError::Unsupported { line: e.line, msg: "->".into() });
                    };
                    (p, id)
                } else {
                    let p = self.addr_of(base)?;
                    let Type::Struct(id) = base.ty.clone() else {
                        return Err(RtError::Unsupported { line: e.line, msg: ".".into() });
                    };
                    (p, id)
                };
                let (off, fty) = field_offset(self.structs(), id, field, &self.ti);
                let fsize = self.type_size(&fty);
                self.model
                    .narrow_field(&p, off, fsize)
                    .map_err(|err| self.model_err(e.line, err))
            }
            ExprKind::Ident(name) => {
                let var = self.lookup_var(name).ok_or_else(|| RtError::Unsupported {
                    line: e.line,
                    msg: format!("unbound variable {name}"),
                })?;
                let ptr_ty = Type::ptr_to(var.ty.clone());
                Ok(self.model.make_ptr(var.addr, var.size, &ptr_ty))
            }
            _ => Err(RtError::Unsupported { line: e.line, msg: "& of non-lvalue".into() }),
        }
    }

    /// Evaluates an expression that must yield a pointer (decaying arrays).
    fn eval_ptr(&mut self, e: &Expr) -> Result<PtrVal, RtError> {
        if e.ty.is_array() {
            return self.addr_of(e);
        }
        match self.eval(e)? {
            Value::Ptr(p) => Ok(p),
            Value::Int(i) => self
                .model
                .int_to_ptr(&self.ctx(), &i, &e.ty)
                .map_err(|err| self.model_err(e.line, err)),
        }
    }

    // --- Expression evaluation ---

    fn tick(&mut self) -> Result<(), RtError> {
        self.steps += 1;
        if self.steps > self.step_limit {
            return Err(RtError::StepLimit);
        }
        Ok(())
    }

    fn eval(&mut self, e: &Expr) -> Result<Value, RtError> {
        self.tick()?;
        let line = e.line;
        match &e.kind {
            ExprKind::IntLit(v) => {
                let w = if e.ty == Type::long() { 8 } else { 4 };
                Ok(Value::Int(IntValue::new(*v, w, true)))
            }
            ExprKind::StrLit(s) => {
                let s = s.clone();
                Ok(Value::Ptr(self.intern_string(&s, line)?))
            }
            ExprKind::Ident(_) => {
                if e.ty.is_array() {
                    return Ok(Value::Ptr(self.addr_of(e)?));
                }
                let pl = self.eval_place(e)?;
                self.load_place(&pl, line)
            }
            ExprKind::Unary(op, inner) => self.eval_unary(*op, inner, e, line),
            ExprKind::Binary(op, a, b) => self.eval_binary(*op, a, b, e, line),
            ExprKind::Assign(op, lhs, rhs) => {
                let pl = self.eval_place(lhs)?;
                let v = if let Some(op) = op {
                    let cur = self.load_place(&pl, line)?;
                    let rv = self.eval_owned(rhs)?;
                    self.apply_binop(*op, cur, &lhs.ty, rv, &rhs.ty, line)?
                } else {
                    self.eval(rhs)?
                };
                let stored = self.convert_for_store(v, &pl.ty);
                self.store_place(&pl, stored, line)?;
                Ok(stored)
            }
            ExprKind::Ternary(c, a, b) => {
                let cv = self.eval(c)?;
                if cv.is_truthy() {
                    self.eval(a)
                } else {
                    self.eval(b)
                }
            }
            ExprKind::Call(name, args) => self.eval_call(name, args, line),
            ExprKind::Index(..) | ExprKind::Member { .. } => {
                if e.ty.is_array() {
                    return Ok(Value::Ptr(self.addr_of(e)?));
                }
                let pl = self.eval_place(e)?;
                self.load_place(&pl, line)
            }
            ExprKind::Cast(ty, inner) => {
                let v = self.eval(inner)?;
                self.eval_cast(ty, v, &inner.ty, line)
            }
            ExprKind::SizeofType(ty) => {
                Ok(Value::Int(IntValue::new(self.type_size(ty) as i64, 8, false)))
            }
            ExprKind::SizeofExpr(inner) => {
                Ok(Value::Int(IntValue::new(self.type_size(&inner.ty) as i64, 8, false)))
            }
            ExprKind::Offsetof(ty, field) => {
                let Type::Struct(id) = ty else {
                    return Err(RtError::Unsupported { line, msg: "offsetof".into() });
                };
                let (off, _) = field_offset(self.structs(), *id, field, &self.ti);
                Ok(Value::Int(IntValue::new(off as i64, 8, false)))
            }
            ExprKind::IncDec { pre, inc, target } => {
                let pl = self.eval_place(target)?;
                let old = self.load_place(&pl, line)?;
                let one = Value::Int(IntValue::new(if *inc { 1 } else { -1 }, 8, true));
                let new = self.apply_binop(BinOp::Add, old, &pl.ty, one, &Type::long(), line)?;
                let stored = self.convert_for_store(new, &pl.ty);
                self.store_place(&pl, stored, line)?;
                Ok(if *pre { stored } else { old })
            }
        }
    }

    fn eval_owned(&mut self, e: &Expr) -> Result<Value, RtError> {
        self.eval(e)
    }

    fn convert_for_store(&self, v: Value, ty: &Type) -> Value {
        match ty {
            Type::Int { width, signed } => Value::Int(self.coerce_int(v, *width, *signed)),
            _ => v,
        }
    }

    fn eval_unary(&mut self, op: UnOp, inner: &Expr, e: &Expr, line: u32) -> Result<Value, RtError> {
        match op {
            UnOp::Deref => {
                if e.ty.is_array() {
                    return Ok(Value::Ptr(self.addr_of(e)?));
                }
                let pl = self.eval_place(e)?;
                self.load_place(&pl, line)
            }
            UnOp::Addr => Ok(Value::Ptr(self.addr_of(inner)?)),
            UnOp::Not => {
                let v = self.eval(inner)?;
                Ok(Value::int(i64::from(!v.is_truthy())))
            }
            UnOp::Neg | UnOp::BitNot => {
                let v = self.eval(inner)?;
                match v {
                    Value::Int(i) => {
                        let r = if op == UnOp::Neg {
                            (i.as_i64()).wrapping_neg()
                        } else {
                            !i.as_i64()
                        };
                        let w = if i.width < 4 { 4 } else { i.width };
                        Ok(Value::Int(IntValue::new(r, w, i.signed).touch_prov()))
                    }
                    Value::Ptr(p) => {
                        // ~ or - on an intcap_t value.
                        self.intcap_arith(line, p, |a| {
                            if op == UnOp::Neg {
                                (a as i64).wrapping_neg() as u64
                            } else {
                                !a
                            }
                        })
                    }
                }
            }
        }
    }

    /// Arithmetic on an `intcap_t`: CHERIv3 adjusts the offset so the
    /// address becomes the arithmetic result; CHERIv2 refuses (§5.1).
    fn intcap_arith(
        &mut self,
        line: u32,
        p: PtrVal,
        f: impl FnOnce(u64) -> u64,
    ) -> Result<Value, RtError> {
        if !self.model.intcap_arith_allowed() {
            return Err(self.model_err(
                line,
                ModelError::new("unrepresentable", "arithmetic on intcap_t values"),
            ));
        }
        match p {
            PtrVal::Cap(c) => {
                let new_addr = f(c.address());
                let adjusted = c
                    .set_offset(new_addr.wrapping_sub(c.base()))
                    .map_err(|_| self.model_err(line, ModelError::new("permission", "sealed")))?;
                Ok(Value::Ptr(PtrVal::Cap(adjusted)))
            }
            other => Ok(Value::Ptr(PtrVal::Plain { addr: f(other.addr()) })),
        }
    }

    fn eval_binary(
        &mut self,
        op: BinOp,
        a: &Expr,
        b: &Expr,
        _e: &Expr,
        line: u32,
    ) -> Result<Value, RtError> {
        if op == BinOp::LogAnd {
            let va = self.eval(a)?;
            if !va.is_truthy() {
                return Ok(Value::int(0));
            }
            let vb = self.eval(b)?;
            return Ok(Value::int(i64::from(vb.is_truthy())));
        }
        if op == BinOp::LogOr {
            let va = self.eval(a)?;
            if va.is_truthy() {
                return Ok(Value::int(1));
            }
            let vb = self.eval(b)?;
            return Ok(Value::int(i64::from(vb.is_truthy())));
        }
        let mut va = self.eval(a)?;
        if a.ty.is_array() {
            va = Value::Ptr(self.addr_of(a)?);
        }
        let mut vb = self.eval(b)?;
        if b.ty.is_array() {
            vb = Value::Ptr(self.addr_of(b)?);
        }
        self.apply_binop(op, va, &a.ty, vb, &b.ty, line)
    }

    #[allow(clippy::too_many_lines)]
    fn apply_binop(
        &mut self,
        op: BinOp,
        va: Value,
        ta: &Type,
        vb: Value,
        tb: &Type,
        line: u32,
    ) -> Result<Value, RtError> {
        let ta = ta.decay();
        let tb = tb.decay();
        // Pointer arithmetic / comparison.
        let a_is_ptr = ta.is_pointer();
        let b_is_ptr = tb.is_pointer();
        if a_is_ptr || b_is_ptr {
            return self.apply_ptr_binop(op, va, &ta, vb, &tb, line);
        }
        // intcap_t arithmetic: a capability-carried integer.
        if let Value::Ptr(p) = va {
            let rhs = vb.as_u64();
            return self.intcap_binop(op, p, rhs, false, line);
        }
        if let Value::Ptr(p) = vb {
            let lhs = va.as_u64();
            return self.intcap_binop(op, p, lhs, true, line);
        }
        let (Value::Int(ia), Value::Int(ib)) = (va, vb) else { unreachable!() };
        let w = ia.width.max(ib.width).max(4);
        let signed = if ia.width == ib.width {
            ia.signed && ib.signed
        } else if ia.width > ib.width {
            ia.signed
        } else {
            ib.signed
        };
        let (x, y) = (ia.v, ib.v);
        let (sx, sy) = (ia.as_i64(), ib.as_i64());
        let r: u64 = match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::Div => {
                if y == 0 {
                    return Err(RtError::DivByZero { line });
                }
                if signed {
                    sx.wrapping_div(sy) as u64
                } else {
                    let (mx, my) = (mask_w(x, w), mask_w(y, w));
                    mx / my
                }
            }
            BinOp::Rem => {
                if y == 0 {
                    return Err(RtError::DivByZero { line });
                }
                if signed {
                    sx.wrapping_rem(sy) as u64
                } else {
                    let (mx, my) = (mask_w(x, w), mask_w(y, w));
                    mx % my
                }
            }
            BinOp::Shl => x.wrapping_shl(y as u32 & 63),
            BinOp::Shr => {
                if signed {
                    (sx >> (y as u32 & 63)) as u64
                } else {
                    mask_w(x, w) >> (y as u32 & 63)
                }
            }
            BinOp::BitAnd => x & y,
            BinOp::BitOr => x | y,
            BinOp::BitXor => x ^ y,
            BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge | BinOp::Eq | BinOp::Ne => {
                let c = if signed {
                    sx.cmp(&sy)
                } else {
                    mask_w(x, w).cmp(&mask_w(y, w))
                };
                let r = match op {
                    BinOp::Lt => c.is_lt(),
                    BinOp::Gt => c.is_gt(),
                    BinOp::Le => c.is_le(),
                    BinOp::Ge => c.is_ge(),
                    BinOp::Eq => c.is_eq(),
                    BinOp::Ne => c.is_ne(),
                    _ => unreachable!(),
                };
                return Ok(Value::int(i64::from(r)));
            }
            BinOp::LogAnd | BinOp::LogOr => unreachable!("short-circuited"),
        };
        let mut out = IntValue::new(r as i64, w, signed);
        // Provenance survives arithmetic but is marked modified — the
        // HardBound/Strict fail-closed trigger and MPX fail-open trigger.
        out.prov = ia.prov.or(ib.prov).map(|mut p| {
            p.modified = true;
            p
        });
        Ok(Value::Int(out))
    }

    fn intcap_binop(
        &mut self,
        op: BinOp,
        p: PtrVal,
        other: u64,
        swapped: bool,
        line: u32,
    ) -> Result<Value, RtError> {
        if op.is_comparison() {
            let a = if swapped { other } else { p.addr() };
            let b = if swapped { p.addr() } else { other };
            let r = match op {
                BinOp::Lt => a < b,
                BinOp::Gt => a > b,
                BinOp::Le => a <= b,
                BinOp::Ge => a >= b,
                BinOp::Eq => a == b,
                BinOp::Ne => a != b,
                _ => unreachable!(),
            };
            return Ok(Value::int(i64::from(r)));
        }
        self.intcap_arith(line, p, |addr| {
            let (a, b) = if swapped { (other, addr) } else { (addr, other) };
            match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Div => a.checked_div(b).unwrap_or(0),
                BinOp::Rem => a.checked_rem(b).unwrap_or(0),
                BinOp::Shl => a.wrapping_shl(b as u32 & 63),
                BinOp::Shr => a.wrapping_shr(b as u32 & 63),
                BinOp::BitAnd => a & b,
                BinOp::BitOr => a | b,
                BinOp::BitXor => a ^ b,
                _ => unreachable!(),
            }
        })
    }

    fn apply_ptr_binop(
        &mut self,
        op: BinOp,
        va: Value,
        ta: &Type,
        vb: Value,
        tb: &Type,
        line: u32,
    ) -> Result<Value, RtError> {
        let as_ptr = |s: &mut Self, v: Value, ty: &Type| -> Result<PtrVal, RtError> {
            match v {
                Value::Ptr(p) => Ok(p),
                Value::Int(i) => s
                    .model
                    .int_to_ptr(&s.ctx(), &i, ty)
                    .map_err(|err| s.model_err(line, err)),
            }
        };
        match op {
            BinOp::Add | BinOp::Sub => {
                if ta.is_pointer() && tb.is_pointer() && op == BinOp::Sub {
                    let pa = as_ptr(self, va, ta)?;
                    let pb = as_ptr(self, vb, tb)?;
                    let diff = self
                        .model
                        .ptr_diff(&pa, &pb)
                        .map_err(|err| self.model_err(line, err))?;
                    let elem = ta.pointee().cloned().expect("checked");
                    let es = self.type_size(&elem).max(1) as i64;
                    return Ok(Value::Int(IntValue::new(diff / es, 8, true)));
                }
                let (pv, ptr_ty, iv) = if ta.is_pointer() {
                    (as_ptr(self, va, ta)?, ta, vb.as_u64() as i64)
                } else {
                    (as_ptr(self, vb, tb)?, tb, va.as_u64() as i64)
                };
                let elem = ptr_ty.pointee().cloned().expect("checked");
                let es = self.type_size(&elem).max(1) as i64;
                let delta = if op == BinOp::Sub { -iv } else { iv }.wrapping_mul(es);
                let q = self
                    .model
                    .ptr_add(&pv, delta)
                    .map_err(|err| self.model_err(line, err))?;
                Ok(Value::Ptr(q))
            }
            BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge | BinOp::Eq | BinOp::Ne => {
                let x = va.as_u64();
                let y = vb.as_u64();
                let r = match op {
                    BinOp::Lt => x < y,
                    BinOp::Gt => x > y,
                    BinOp::Le => x <= y,
                    BinOp::Ge => x >= y,
                    BinOp::Eq => x == y,
                    BinOp::Ne => x != y,
                    _ => unreachable!(),
                };
                Ok(Value::int(i64::from(r)))
            }
            other => Err(RtError::Unsupported {
                line,
                msg: format!("operator {other:?} on pointers"),
            }),
        }
    }

    fn eval_cast(&mut self, to: &Type, v: Value, from: &Type, line: u32) -> Result<Value, RtError> {
        let from = from.decay();
        match to {
            Type::Void => Ok(Value::int(0)),
            Type::Int { width, signed } => match v {
                Value::Int(i) => Ok(Value::Int(self.coerce_int(Value::Int(i), *width, *signed))),
                Value::Ptr(p) => self
                    .model
                    .ptr_to_int(&p, *width, *signed)
                    .map(Value::Int)
                    .map_err(|err| self.model_err(line, err)),
            },
            Type::IntPtr { signed } | Type::IntCap { signed } => {
                if self.model.stores_caps() {
                    match v {
                        Value::Ptr(p) => Ok(Value::Ptr(p)),
                        Value::Int(i) => Ok(Value::Ptr(PtrVal::Cap(Capability::from_int(i.v)))),
                    }
                } else {
                    match v {
                        Value::Ptr(p) => self
                            .model
                            .ptr_to_int(&p, 8, *signed)
                            .map(Value::Int)
                            .map_err(|err| self.model_err(line, err)),
                        Value::Int(i) => {
                            Ok(Value::Int(self.coerce_int(Value::Int(i), 8, *signed)))
                        }
                    }
                }
            }
            Type::Ptr { .. } => match v {
                Value::Ptr(p) => Ok(Value::Ptr(self.model.adjust_for_type(p, to))),
                Value::Int(i) => {
                    let _ = from;
                    let p = self
                        .model
                        .int_to_ptr(&self.ctx(), &i, to)
                        .map_err(|err| self.model_err(line, err))?;
                    Ok(Value::Ptr(self.model.adjust_for_type(p, to)))
                }
            },
            Type::Array { .. } | Type::Struct(_) => Err(RtError::Unsupported {
                line,
                msg: format!("cast to {to}"),
            }),
        }
    }

    // --- Calls ---

    fn eval_call(&mut self, name: &str, args: &[Expr], line: u32) -> Result<Value, RtError> {
        if let Some(v) = self.eval_builtin(name, args, line)? {
            return Ok(v);
        }
        let f = self
            .unit
            .func(name)
            .ok_or_else(|| RtError::Unsupported { line, msg: format!("unknown function {name}") })?;
        let mut argv = Vec::with_capacity(args.len());
        for (arg, param) in args.iter().zip(&f.params) {
            let mut v = self.eval(arg)?;
            if arg.ty.is_array() {
                v = Value::Ptr(self.addr_of(arg)?);
            }
            if let (Value::Ptr(p), pty @ Type::Ptr { .. }) = (&v, &param.ty) {
                v = Value::Ptr(self.model.adjust_for_type(*p, pty));
            }
            argv.push(v);
        }
        self.call_function(f, argv, line)
    }

    fn call_function(&mut self, f: &FuncDef, argv: Vec<Value>, line: u32) -> Result<Value, RtError> {
        if self.frames.len() > 400 {
            return Err(RtError::Unsupported { line, msg: "call depth exceeded".into() });
        }
        let saved_cursor = self.stack_cursor;
        self.frames.push(vec![HashMap::new()]);
        self.frame_bases.push(saved_cursor);
        for (param, v) in f.params.iter().zip(argv) {
            let var = self.define_local(&param.name, &param.ty, f.line)?;
            self.store_typed(var.addr, &var.ty, v, f.line)?;
        }
        let flow = self.exec_block_scoped(&f.body);
        let popped = self.frames.pop().expect("frame");
        self.frame_bases.pop();
        // Retire local objects and their shadow entries.
        for scope in &popped {
            for var in scope.values() {
                self.objects.remove(&var.addr);
                if self.model.uses_shadow() {
                    let range = var.addr..var.addr + var.size;
                    self.shadow.retain(|a, _| !range.contains(a));
                }
            }
        }
        self.stack_cursor = saved_cursor;
        match flow? {
            Flow::Return(Some(v)) => Ok(v),
            _ => Ok(Value::int(0)),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn eval_builtin(
        &mut self,
        name: &str,
        args: &[Expr],
        line: u32,
    ) -> Result<Option<Value>, RtError> {
        if self.unit.func(name).is_some() {
            return Ok(None); // user definitions win
        }
        match name {
            "malloc" => {
                let n = self.eval(&args[0])?.as_u64();
                match self.heap.alloc(n) {
                    Ok(addr) => {
                        self.objects.insert(addr, n.max(1));
                        let ty = Type::ptr_to(Type::Void);
                        Ok(Some(Value::Ptr(self.model.make_ptr(addr, n, &ty))))
                    }
                    Err(_) => Ok(Some(Value::Ptr(PtrVal::Plain { addr: 0 }))),
                }
            }
            "free" => {
                let v = self.eval(&args[0])?;
                let addr = v.as_u64();
                if addr == 0 {
                    return Ok(Some(Value::int(0)));
                }
                self.heap.free(addr).map_err(|_| RtError::BadFree { line, addr })?;
                self.objects.remove(&addr);
                Ok(Some(Value::int(0)))
            }
            "memcpy" | "memset" => {
                let d = self.eval_ptr(&args[0])?;
                let n_expr = &args[2];
                if name == "memcpy" {
                    let s = self.eval_ptr(&args[1])?;
                    let n = self.eval(n_expr)?.as_u64();
                    if n > 0 {
                        let da = self
                            .model
                            .deref(&self.ctx(), &d, n, true)
                            .map_err(|err| self.model_err(line, err))?;
                        let sa = self
                            .model
                            .deref(&self.ctx(), &s, n, false)
                            .map_err(|err| self.model_err(line, err))?;
                        self.copy_bytes(da, sa, n, line)?;
                    }
                } else {
                    let c = self.eval(&args[1])?.as_u64() as u8;
                    let n = self.eval(n_expr)?.as_u64();
                    if n > 0 {
                        let da = self
                            .model
                            .deref(&self.ctx(), &d, n, true)
                            .map_err(|err| self.model_err(line, err))?;
                        let pd = self.phys(da, n, line)?;
                        self.mem.fill(pd, n, c).map_err(|_| RtError::Unmapped { line, addr: da })?;
                        if self.model.uses_shadow() {
                            for a in da..da + n {
                                self.shadow.remove(&a);
                            }
                        }
                    }
                }
                Ok(Some(Value::Ptr(d)))
            }
            "strlen" => {
                let p = self.eval_ptr(&args[0])?;
                let mut n = 0u64;
                loop {
                    let q = self.model.ptr_add(&p, n as i64).map_err(|e| self.model_err(line, e))?;
                    let a = self
                        .model
                        .deref(&self.ctx(), &q, 1, false)
                        .map_err(|err| self.model_err(line, err))?;
                    if self.read_raw(a, 1, line)? == 0 {
                        break;
                    }
                    n += 1;
                    self.tick()?;
                }
                Ok(Some(Value::Int(IntValue::new(n as i64, 8, false))))
            }
            "strcmp" => {
                let pa = self.eval_ptr(&args[0])?;
                let pb = self.eval_ptr(&args[1])?;
                let mut i = 0i64;
                loop {
                    let qa = self.model.ptr_add(&pa, i).map_err(|e| self.model_err(line, e))?;
                    let qb = self.model.ptr_add(&pb, i).map_err(|e| self.model_err(line, e))?;
                    let aa = self
                        .model
                        .deref(&self.ctx(), &qa, 1, false)
                        .map_err(|err| self.model_err(line, err))?;
                    let ab = self
                        .model
                        .deref(&self.ctx(), &qb, 1, false)
                        .map_err(|err| self.model_err(line, err))?;
                    let (ca, cb) = (self.read_raw(aa, 1, line)?, self.read_raw(ab, 1, line)?);
                    if ca != cb {
                        return Ok(Some(Value::int(if ca < cb { -1 } else { 1 })));
                    }
                    if ca == 0 {
                        return Ok(Some(Value::int(0)));
                    }
                    i += 1;
                    self.tick()?;
                }
            }
            "puts" => {
                let p = self.eval_ptr(&args[0])?;
                let mut i = 0i64;
                loop {
                    let q = self.model.ptr_add(&p, i).map_err(|e| self.model_err(line, e))?;
                    let a = self
                        .model
                        .deref(&self.ctx(), &q, 1, false)
                        .map_err(|err| self.model_err(line, err))?;
                    let c = self.read_raw(a, 1, line)?;
                    if c == 0 {
                        break;
                    }
                    self.output.push(c as u8 as char);
                    i += 1;
                    self.tick()?;
                }
                self.output.push('\n');
                Ok(Some(Value::int(0)))
            }
            "putchar" => {
                let c = self.eval(&args[0])?.as_u64();
                self.output.push(c as u8 as char);
                Ok(Some(Value::int(c as i64)))
            }
            "putint" => {
                let v = self.eval(&args[0])?;
                let n = match v {
                    Value::Int(i) => i.as_i64(),
                    Value::Ptr(p) => p.addr() as i64,
                };
                self.output.push_str(&n.to_string());
                Ok(Some(Value::int(0)))
            }
            "assert" => {
                let v = self.eval(&args[0])?;
                if v.is_truthy() {
                    Ok(Some(Value::int(0)))
                } else {
                    Err(RtError::AssertFailed { line })
                }
            }
            "abort" => Err(RtError::Abort { line }),
            "clock" => Ok(Some(Value::Int(IntValue::new(self.steps as i64, 8, true)))),
            _ => Ok(None),
        }
    }

    // --- Statements ---

    fn exec_block_scoped(&mut self, b: &Block) -> Result<Flow, RtError> {
        self.frames.last_mut().expect("frame").push(HashMap::new());
        let r = self.exec_stmts(b);
        let scope = self.frames.last_mut().expect("frame").pop().expect("scope");
        for var in scope.values() {
            self.objects.remove(&var.addr);
            if self.model.uses_shadow() {
                let range = var.addr..var.addr + var.size;
                self.shadow.retain(|a, _| !range.contains(a));
            }
        }
        r
    }

    fn exec_stmts(&mut self, b: &Block) -> Result<Flow, RtError> {
        for s in &b.stmts {
            match self.exec_stmt(s)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, s: &Stmt) -> Result<Flow, RtError> {
        self.tick()?;
        match s {
            Stmt::Decl { name, ty, init, line } => {
                let var = self.define_local(name, ty, *line)?;
                if let Some(e) = init {
                    if let (Type::Array { elem, .. }, ExprKind::StrLit(st)) = (ty, &e.kind) {
                        if **elem == Type::char_() {
                            let bytes: Vec<u8> = st.bytes().chain(std::iter::once(0)).collect();
                            for (i, bb) in bytes.iter().enumerate() {
                                self.write_raw(var.addr + i as u64, *bb as u64, 1, *line)?;
                            }
                            return Ok(Flow::Normal);
                        }
                    }
                    let mut v = self.eval(e)?;
                    if e.ty.is_array() {
                        v = Value::Ptr(self.addr_of(e)?);
                    }
                    if let (Value::Ptr(p), pty @ Type::Ptr { .. }) = (&v, ty) {
                        v = Value::Ptr(self.model.adjust_for_type(*p, pty));
                    }
                    self.store_typed(var.addr, ty, v, *line)?;
                }
                Ok(Flow::Normal)
            }
            Stmt::Expr(e) => {
                self.eval(e)?;
                Ok(Flow::Normal)
            }
            Stmt::If { cond, then_branch, else_branch } => {
                if self.eval(cond)?.is_truthy() {
                    self.exec_block_scoped(then_branch)
                } else if let Some(e) = else_branch {
                    self.exec_block_scoped(e)
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::While { cond, body } => {
                while self.eval(cond)?.is_truthy() {
                    match self.exec_block_scoped(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        _ => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::DoWhile { body, cond } => {
                loop {
                    match self.exec_block_scoped(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        _ => {}
                    }
                    if !self.eval(cond)?.is_truthy() {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For { init, cond, step, body } => {
                self.frames.last_mut().expect("frame").push(HashMap::new());
                let r = (|| -> Result<Flow, RtError> {
                    if let Some(i) = init {
                        self.exec_stmt(i)?;
                    }
                    loop {
                        if let Some(c) = cond {
                            if !self.eval(c)?.is_truthy() {
                                break;
                            }
                        }
                        match self.exec_block_scoped(body)? {
                            Flow::Break => break,
                            Flow::Return(v) => return Ok(Flow::Return(v)),
                            _ => {}
                        }
                        if let Some(st) = step {
                            self.eval(st)?;
                        }
                    }
                    Ok(Flow::Normal)
                })();
                let scope = self.frames.last_mut().expect("frame").pop().expect("scope");
                for var in scope.values() {
                    self.objects.remove(&var.addr);
                }
                r
            }
            Stmt::Return(e, _) => {
                let v = match e {
                    Some(e) => {
                        let mut v = self.eval(e)?;
                        if e.ty.is_array() {
                            v = Value::Ptr(self.addr_of(e)?);
                        }
                        Some(v)
                    }
                    None => None,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break(_) => Ok(Flow::Break),
            Stmt::Continue(_) => Ok(Flow::Continue),
            Stmt::Block(b) => self.exec_block_scoped(b),
        }
    }
}

fn mask_w(v: u64, w: u8) -> u64 {
    if w >= 8 {
        v
    } else {
        v & ((1u64 << (w * 8)) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str, kind: ModelKind) -> Result<ExecResult, RtError> {
        let unit = cheri_c::parse(src).expect("front end");
        run_main(&unit, kind)
    }

    fn run_all_ok(src: &str, expect: i64) {
        for kind in ModelKind::ALL {
            let r = run(src, kind).unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert_eq!(r.exit_code, expect, "model {kind}");
        }
    }

    #[test]
    fn arithmetic_and_control_flow() {
        run_all_ok(
            "int main(void) {
                int s = 0;
                for (int i = 1; i <= 10; i++) s += i;
                while (s > 54) s--;
                return s;
            }",
            54,
        );
    }

    #[test]
    fn recursion() {
        run_all_ok(
            "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
             int main(void) { return fib(10); }",
            55,
        );
    }

    #[test]
    fn arrays_and_pointers() {
        run_all_ok(
            "int main(void) {
                int a[8];
                for (int i = 0; i < 8; i++) a[i] = i * i;
                int *p = a;
                int s = 0;
                for (int i = 0; i < 8; i++) s += *(p + i);
                return s;
            }",
            140,
        );
    }

    #[test]
    fn structs_and_members() {
        run_all_ok(
            "struct point { int x; int y; };
             int main(void) {
                struct point p;
                p.x = 3; p.y = 4;
                struct point *q = &p;
                return q->x * q->x + q->y * q->y;
             }",
            25,
        );
    }

    #[test]
    fn linked_list_with_malloc() {
        run_all_ok(
            "struct node { int v; struct node *next; };
             int main(void) {
                struct node *head = 0;
                for (int i = 1; i <= 5; i++) {
                    struct node *n = (struct node*)malloc(sizeof(struct node));
                    n->v = i;
                    n->next = head;
                    head = n;
                }
                int s = 0;
                while (head) { s += head->v; struct node *d = head; head = head->next; free(d); }
                return s;
             }",
            15,
        );
    }

    #[test]
    fn unions_type_pun() {
        run_all_ok(
            "union u { unsigned int i; unsigned char b[4]; };
             int main(void) {
                union u v;
                v.i = 0x01020304;
                return v.b[0] + v.b[3];
             }",
            5, // little-endian: 0x04 + 0x01
        );
    }

    #[test]
    fn strings_and_output() {
        let r = run(
            "int main(void) { puts(\"hello\"); putint(42); return (int)strlen(\"abc\"); }",
            ModelKind::CheriV3,
        )
        .unwrap();
        assert_eq!(r.output, "hello\n42");
        assert_eq!(r.exit_code, 3);
    }

    #[test]
    fn globals_initialize() {
        run_all_ok(
            "int g = 40;
             char msg[] = \"hi\";
             int main(void) { return g + msg[1] - 'i' + 2; }",
            42,
        );
    }

    #[test]
    fn sizeof_depends_on_model() {
        let src = "int main(void) { return (int)sizeof(int*); }";
        assert_eq!(run(src, ModelKind::Pdp11).unwrap().exit_code, 8);
        assert_eq!(run(src, ModelKind::CheriV3).unwrap().exit_code, 32);
    }

    #[test]
    fn buffer_overflow_caught_by_safe_models() {
        let src = "int main(void) {
            char *p = (char*)malloc(16);
            p[20] = 1;   /* classic overflow */
            return 0;
        }";
        // The PDP-11 model lets it corrupt the heap silently.
        assert!(run(src, ModelKind::Pdp11).is_ok());
        for kind in [
            ModelKind::HardBound,
            ModelKind::Mpx,
            ModelKind::Relaxed,
            ModelKind::Strict,
            ModelKind::CheriV2,
            ModelKind::CheriV3,
        ] {
            let e = run(src, kind).unwrap_err();
            assert!(matches!(e, RtError::Model { .. }), "{kind} should catch overflow: {e}");
        }
    }

    #[test]
    fn assert_and_abort() {
        assert!(matches!(
            run("int main(void) { assert(0); return 0; }", ModelKind::Pdp11),
            Err(RtError::AssertFailed { .. })
        ));
        assert!(matches!(
            run("int main(void) { abort(); return 0; }", ModelKind::Pdp11),
            Err(RtError::Abort { .. })
        ));
    }

    #[test]
    fn div_by_zero_reported() {
        assert!(matches!(
            run("int main(void) { int z = 0; return 5 / z; }", ModelKind::Pdp11),
            Err(RtError::DivByZero { .. })
        ));
    }

    #[test]
    fn double_free_reported() {
        let e = run(
            "int main(void) { char *p = (char*)malloc(8); free(p); free(p); return 0; }",
            ModelKind::Pdp11,
        )
        .unwrap_err();
        assert!(matches!(e, RtError::BadFree { .. }));
    }

    #[test]
    fn memcpy_copies_pointers_intact() {
        // memcpy must move pointers without knowing they are there (§4).
        run_all_ok(
            "struct holder { int *p; long pad; };
             int main(void) {
                int x = 7;
                struct holder a;
                struct holder b;
                a.p = &x;
                a.pad = 1;
                memcpy(&b, &a, sizeof(struct holder));
                return *b.p;
             }",
            7,
        );
    }

    #[test]
    fn ternary_and_compound_ops() {
        run_all_ok(
            "int main(void) {
                int x = 5;
                x <<= 2;          /* 20 */
                x |= 1;           /* 21 */
                x %= 10;          /* 1 */
                return x > 0 ? x + 41 : -1;
             }",
            42,
        );
    }

    #[test]
    fn pointer_comparisons() {
        run_all_ok(
            "int main(void) {
                int a[4];
                int *p = &a[1];
                int *q = &a[3];
                if (p < q && q > p && p != q && p == p) return 1;
                return 0;
             }",
            1,
        );
    }

    #[test]
    fn step_limit_stops_infinite_loops() {
        let unit = cheri_c::parse("int main(void) { while (1) { } return 0; }").unwrap();
        let r = Interp::new(&unit, ModelKind::Pdp11.build())
            .with_step_limit(10_000)
            .run("main");
        assert!(matches!(r, Err(RtError::StepLimit)));
    }

    #[test]
    fn out_of_bounds_intermediate_models_differ() {
        // Idiom II, straight from the paper.
        let src = "int main(void) {
            int a[4];
            a[2] = 9;
            int *p = a + 9;   /* invalid intermediate */
            p = p - 7;        /* back in bounds */
            return *p;
        }";
        for kind in [
            ModelKind::Pdp11,
            ModelKind::HardBound,
            ModelKind::Mpx,
            ModelKind::Relaxed,
            ModelKind::Strict,
            ModelKind::CheriV3,
        ] {
            assert_eq!(run(src, kind).unwrap().exit_code, 9, "{kind}");
        }
        assert!(run(src, ModelKind::CheriV2).is_err());
    }

    #[test]
    fn wide_idiom_fails_everywhere() {
        // Idiom Wide: pointers do not fit in 32 bits on any 64-bit model.
        let src = "int main(void) {
            int x = 7;
            int *p = &x;
            unsigned int w = (unsigned int)(unsigned long)(int*)p;
            int *q = (int*)(unsigned long)w;
            return *q;
        }";
        for kind in ModelKind::ALL {
            assert!(run(src, kind).is_err(), "{kind} should fail Wide");
        }
    }

    #[test]
    fn output_and_steps_are_reported() {
        let r = run("int main(void) { putchar('x'); return 0; }", ModelKind::Pdp11).unwrap();
        assert_eq!(r.output, "x");
        assert!(r.steps > 0);
    }
}
