//! Control-flow-graph recovery over the flat execution IR.
//!
//! The lowering emits structured control flow as branches over a linear op
//! vector; this module recovers basic blocks and edges from the branch
//! targets so dataflow analyses (`cheri-lint`) can run a worklist over the
//! function. Blocks are per-function: every function occupies a contiguous
//! pc range (see [`IrProgram::func_range`]) and `Call` is *not* a block
//! terminator — calls return inline, and the analysis treats them as
//! opaque value producers.

use crate::ir::{IrProgram, Op};
use std::collections::BTreeSet;

/// A basic block: a maximal straight-line run of ops.
#[derive(Clone, Debug)]
pub struct BasicBlock {
    /// First pc of the block (inclusive).
    pub start: usize,
    /// One past the last pc of the block (exclusive).
    pub end: usize,
    /// Successor blocks, as indices into [`Cfg::blocks`]. Conditional
    /// branches list the *taken* edge first, then fall-through.
    pub succs: Vec<usize>,
    /// Predecessor blocks.
    pub preds: Vec<usize>,
    /// `true` when some predecessor edge is a back edge (the block is a
    /// loop head — dataflow should widen here).
    pub is_loop_head: bool,
}

/// The control-flow graph of one lowered function.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// The function's entry pc.
    pub entry: usize,
    /// Blocks in ascending pc order; block 0 contains the entry.
    pub blocks: Vec<BasicBlock>,
}

impl Cfg {
    /// Recovers the CFG of function `fid` from branch targets.
    pub fn build(prog: &IrProgram, fid: u32) -> Cfg {
        let (lo, hi) = prog.func_range(fid);
        // Leaders: the entry, every branch target, and every op after a
        // terminator (branch or return).
        let mut leaders: BTreeSet<usize> = BTreeSet::new();
        leaders.insert(lo);
        for pc in lo..hi {
            match &prog.code[pc] {
                Op::Jump { target } | Op::JumpIfZero { target } | Op::JumpIfNonZero { target } => {
                    leaders.insert(*target as usize);
                    if pc + 1 < hi {
                        leaders.insert(pc + 1);
                    }
                }
                Op::Ret { .. } if pc + 1 < hi => {
                    leaders.insert(pc + 1);
                }
                _ => {}
            }
        }
        let starts: Vec<usize> = leaders.into_iter().filter(|&pc| pc < hi).collect();
        let block_of = |pc: usize| -> usize {
            match starts.binary_search(&pc) {
                Ok(i) => i,
                Err(i) => i - 1,
            }
        };
        let mut blocks: Vec<BasicBlock> = starts
            .iter()
            .enumerate()
            .map(|(i, &start)| BasicBlock {
                start,
                end: starts.get(i + 1).copied().unwrap_or(hi),
                succs: Vec::new(),
                preds: Vec::new(),
                is_loop_head: false,
            })
            .collect();
        for (i, b) in blocks.iter_mut().enumerate() {
            let last = b.end - 1;
            b.succs = match &prog.code[last] {
                Op::Jump { target } => vec![block_of(*target as usize)],
                Op::JumpIfZero { target } | Op::JumpIfNonZero { target } => {
                    let mut v = vec![block_of(*target as usize)];
                    if b.end < hi {
                        v.push(i + 1);
                    }
                    v
                }
                Op::Ret { .. } => Vec::new(),
                _ if b.end < hi => vec![i + 1],
                _ => Vec::new(),
            };
        }
        for i in 0..blocks.len() {
            for s in blocks[i].succs.clone() {
                blocks[s].preds.push(i);
                // The lowering only emits backward branches for loops, so a
                // target at or before the source marks a loop head.
                if blocks[s].start <= blocks[i].start {
                    blocks[s].is_loop_head = true;
                }
            }
        }
        Cfg { entry: lo, blocks }
    }

    /// The block containing `pc`, if any.
    pub fn block_at(&self, pc: usize) -> Option<usize> {
        self.blocks.iter().position(|b| b.start <= pc && pc < b.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::TargetInfo;
    use crate::lower;

    fn cfg_of(src: &str, name: &str) -> (IrProgram, Cfg) {
        let unit = cheri_c::parse(src).expect("parses");
        let prog = lower(&unit, TargetInfo::lp64());
        let fid = prog.func_by_name(name).expect("function exists");
        let cfg = Cfg::build(&prog, fid);
        (prog, cfg)
    }

    #[test]
    fn straight_line_has_no_branches() {
        // One reachable block ending in Ret, plus the unreachable
        // scope-exit tail the lowering emits after `return`.
        let (_, cfg) = cfg_of("int main(void) { int x = 1; return x; }", "main");
        assert!(cfg.blocks[0].succs.is_empty());
        assert!(cfg.blocks.iter().all(|b| !b.is_loop_head));
        assert!(cfg.blocks.iter().skip(1).all(|b| b.preds.is_empty()));
    }

    #[test]
    fn if_else_diamonds() {
        let (_, cfg) = cfg_of(
            "int main(void) { int x = 1; if (x) { x = 2; } else { x = 3; } return x; }",
            "main",
        );
        assert_eq!(cfg.blocks[0].succs.len(), 2, "conditional entry");
        assert!(cfg.blocks.iter().all(|b| !b.is_loop_head));
        // The join block has two predecessors.
        assert!(cfg.blocks.iter().any(|b| b.preds.len() == 2));
    }

    #[test]
    fn loops_have_back_edges_and_heads() {
        let (_, cfg) = cfg_of(
            "int main(void) { int s = 0; for (int i = 0; i < 5; i++) { s = s + i; } return s; }",
            "main",
        );
        let heads: Vec<_> = cfg.blocks.iter().filter(|b| b.is_loop_head).collect();
        assert_eq!(heads.len(), 1, "exactly one loop head");
        assert!(heads[0].preds.len() >= 2, "entry edge plus back edge");
    }

    #[test]
    fn blocks_tile_the_function() {
        let (prog, cfg) = cfg_of(
            "int f(int n) { int s = 0; while (n) { if (n < 3) { break; } n--; s++; } return s; }\
             int main(void) { return f(9); }",
            "f",
        );
        let fid = prog.func_by_name("f").unwrap();
        let (lo, hi) = prog.func_range(fid);
        let mut covered = lo;
        for b in &cfg.blocks {
            assert_eq!(b.start, covered, "blocks are contiguous");
            assert!(b.end > b.start);
            covered = b.end;
        }
        assert_eq!(covered, hi, "blocks cover the whole function");
        // Every successor/predecessor index is valid and consistent.
        for (i, b) in cfg.blocks.iter().enumerate() {
            for &s in &b.succs {
                assert!(cfg.blocks[s].preds.contains(&i));
            }
        }
        assert_eq!(cfg.block_at(lo), Some(0));
        assert_eq!(cfg.block_at(hi), None);
    }
}
