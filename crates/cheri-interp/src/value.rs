//! Runtime values.

use cheri_cap::Capability;

/// Pointer provenance carried by an integer value that was derived from a
/// pointer — the runtime analogue of the metadata HardBound keeps in its
/// shadow space, MPX in its look-aside tables, and the *Strict* model in
/// its formal semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Prov {
    /// Bounds of the object the pointer referred to.
    pub base: u64,
    /// Size of that object.
    pub len: u64,
    /// `true` once any arithmetic has been performed on the integer.
    /// HardBound and Strict then refuse to reconstitute the pointer
    /// (fail closed); MPX reconstitutes an *unchecked* pointer (fail open).
    pub modified: bool,
}

/// An integer value with width, signedness, and optional provenance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IntValue {
    /// The bits (low `width` bytes significant, sign-extended in `v`).
    pub v: u64,
    /// Width in bytes: 1, 2, 4 or 8.
    pub width: u8,
    /// Signedness, controlling extension and comparisons.
    pub signed: bool,
    /// Pointer provenance, if this integer was derived from a pointer.
    pub prov: Option<Prov>,
}

impl IntValue {
    /// A plain provenance-free integer.
    pub fn new(v: i64, width: u8, signed: bool) -> IntValue {
        IntValue {
            v: v as u64,
            width,
            signed,
            prov: None,
        }
        .normalized()
    }

    /// Re-extends the value to 64 bits according to width/signedness so the
    /// `v` field is always canonical.
    pub fn normalized(mut self) -> IntValue {
        let bits = self.width as u32 * 8;
        if bits < 64 {
            let shift = 64 - bits;
            self.v = if self.signed {
                (((self.v << shift) as i64) >> shift) as u64
            } else {
                (self.v << shift) >> shift
            };
        }
        self
    }

    /// The value as signed 64-bit.
    pub fn as_i64(&self) -> i64 {
        self.v as i64
    }

    /// `true` when non-zero (C truthiness).
    pub fn is_truthy(&self) -> bool {
        self.v != 0
    }

    /// Marks the provenance as modified (after arithmetic), keeping bounds.
    pub fn touch_prov(mut self) -> IntValue {
        if let Some(p) = &mut self.prov {
            p.modified = true;
        }
        self
    }
}

/// A runtime pointer, in whichever representation the memory model uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PtrVal {
    /// A bare address: the PDP-11 representation (also used by Relaxed,
    /// which re-derives bounds from the live-object map at dereference, and
    /// by MPX for pointers whose metadata was lost — the fail-open case).
    Plain {
        /// The address.
        addr: u64,
    },
    /// A fat pointer: address plus the bounds it must stay within when
    /// dereferenced (HardBound, MPX with metadata, Strict).
    Fat {
        /// Current address.
        addr: u64,
        /// Object base.
        base: u64,
        /// Object size; `0` means "provenance lost, fail closed".
        len: u64,
    },
    /// A CHERI capability (v2 or v3 semantics are chosen by the model).
    Cap(Capability),
}

impl PtrVal {
    /// The numeric address, regardless of representation.
    pub fn addr(&self) -> u64 {
        match self {
            PtrVal::Plain { addr } | PtrVal::Fat { addr, .. } => *addr,
            PtrVal::Cap(c) => c.address(),
        }
    }

    /// `true` if this is a null pointer (address 0, no validity).
    pub fn is_null(&self) -> bool {
        match self {
            PtrVal::Plain { addr } => *addr == 0,
            PtrVal::Fat { addr, .. } => *addr == 0,
            PtrVal::Cap(c) => !c.tag() && c.address() == 0,
        }
    }
}

/// A runtime value: integer or pointer. Aggregates live in memory and are
/// manipulated by reference.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Value {
    /// An integer (possibly provenance-carrying).
    Int(IntValue),
    /// A pointer (or an `intcap_t` — an integer carried in a capability).
    Ptr(PtrVal),
}

impl Value {
    /// Convenience integer constructor.
    pub fn int(v: i64) -> Value {
        Value::Int(IntValue::new(v, 4, true))
    }

    /// Convenience `long` constructor.
    pub fn long(v: i64) -> Value {
        Value::Int(IntValue::new(v, 8, true))
    }

    /// C truthiness.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Int(i) => i.is_truthy(),
            Value::Ptr(p) => !p.is_null(),
        }
    }

    /// The value's numeric interpretation (pointer address or integer).
    pub fn as_u64(&self) -> u64 {
        match self {
            Value::Int(i) => i.v,
            Value::Ptr(p) => p.addr(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_cap::Perms;

    #[test]
    fn normalization_sign_extends() {
        let v = IntValue::new(-1, 1, true);
        assert_eq!(v.v, u64::MAX);
        assert_eq!(v.as_i64(), -1);
        let u = IntValue::new(-1, 1, false);
        assert_eq!(u.v, 0xFF);
    }

    #[test]
    fn normalization_truncates() {
        let v = IntValue::new(0x1_0000_0001, 4, true);
        assert_eq!(v.v, 1);
    }

    #[test]
    fn truthiness() {
        assert!(Value::int(1).is_truthy());
        assert!(!Value::int(0).is_truthy());
        assert!(!Value::Ptr(PtrVal::Plain { addr: 0 }).is_truthy());
        assert!(Value::Ptr(PtrVal::Plain { addr: 4 }).is_truthy());
        let null_cap = PtrVal::Cap(Capability::null());
        assert!(!Value::Ptr(null_cap).is_truthy());
    }

    #[test]
    fn ptr_addr_is_uniform() {
        assert_eq!(PtrVal::Plain { addr: 7 }.addr(), 7);
        assert_eq!(
            PtrVal::Fat {
                addr: 9,
                base: 0,
                len: 16
            }
            .addr(),
            9
        );
        let c = Capability::new_mem(0x100, 8, Perms::data())
            .inc_offset(4)
            .unwrap();
        assert_eq!(PtrVal::Cap(c).addr(), 0x104);
    }

    #[test]
    fn touch_prov_marks_modified() {
        let mut v = IntValue::new(5, 8, true);
        v.prov = Some(Prov {
            base: 0,
            len: 8,
            modified: false,
        });
        let t = v.touch_prov();
        assert!(t.prov.unwrap().modified);
        // No provenance: no-op.
        assert_eq!(IntValue::new(5, 8, true).touch_prov().prov, None);
    }
}
