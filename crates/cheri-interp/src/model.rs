//! The pluggable memory-model interface.

use crate::layout::TargetInfo;
use crate::value::{IntValue, PtrVal};
use cheri_c::Type;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Which interpretation of the C abstract machine a model implements
/// (the rows of the paper's Table 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// x86/MIPS/PDP-11: pointers are integers, no checking.
    Pdp11,
    /// HardBound (Devietti et al.): fat pointers in a shadow space,
    /// fails closed when provenance is lost.
    HardBound,
    /// Intel MPX: bounds in look-aside tables keyed by pointer location;
    /// on mismatch the check succeeds unconditionally (fails open).
    Mpx,
    /// The paper's *Relaxed* interpreter: integers can become pointers as
    /// long as the target object is still live (live-object map lookup).
    Relaxed,
    /// The paper's *Strict* interpreter: pointers survive integer round
    /// trips only if the integer is never modified.
    Strict,
    /// CHERI ISAv2: capabilities without an offset; pointer arithmetic
    /// monotonically consumes bounds; no subtraction.
    CheriV2,
    /// CHERI ISAv3 (the paper's contribution): fat capabilities with a
    /// free-roaming offset, checked at dereference.
    CheriV3,
}

impl ModelKind {
    /// All models, in the paper's Table 3 row order.
    pub const ALL: [ModelKind; 7] = [
        ModelKind::Pdp11,
        ModelKind::HardBound,
        ModelKind::Mpx,
        ModelKind::Relaxed,
        ModelKind::Strict,
        ModelKind::CheriV2,
        ModelKind::CheriV3,
    ];

    /// The display name used in the Table 3 harness.
    pub fn display_name(self) -> &'static str {
        match self {
            ModelKind::Pdp11 => "x86/MIPS/PDP-11",
            ModelKind::HardBound => "HardBound",
            ModelKind::Mpx => "Intel MPX",
            ModelKind::Relaxed => "Relaxed",
            ModelKind::Strict => "Strict",
            ModelKind::CheriV2 => "CHERIv2",
            ModelKind::CheriV3 => "CHERIv3",
        }
    }

    /// Builds the model implementation.
    pub fn build(self) -> Box<dyn MemoryModel> {
        crate::models::build(self)
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.display_name())
    }
}

/// Why a model refused an operation. The `kind` string feeds the Table 3
/// failure classification ("bounds", "tag", "permission", "provenance",
/// "unrepresentable").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelError {
    /// Machine-readable category.
    pub kind: &'static str,
    /// Human-readable explanation.
    pub msg: String,
}

impl ModelError {
    /// Builds an error.
    pub fn new(kind: &'static str, msg: impl Into<String>) -> ModelError {
        ModelError {
            kind,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} violation: {}", self.kind, self.msg)
    }
}

impl Error for ModelError {}

/// Metadata remembered for a pointer spilled to memory: the machine keys
/// these by storage address, modelling HardBound's shadow space and MPX's
/// bound tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShadowEntry {
    /// The pointer bits that were stored.
    pub bits: u64,
    /// Object base at store time.
    pub base: u64,
    /// Object length at store time.
    pub len: u64,
}

/// Read-only machine state a model may consult.
pub struct ModelCtx<'a> {
    /// Live objects: base → length. Includes globals, string literals,
    /// live heap blocks, and in-scope locals.
    pub objects: &'a BTreeMap<u64, u64>,
}

impl ModelCtx<'_> {
    /// The live object containing `addr`, if any.
    pub fn object_containing(&self, addr: u64) -> Option<(u64, u64)> {
        let (&base, &len) = self.objects.range(..=addr).next_back()?;
        if addr < base + len {
            Some((base, len))
        } else {
            None
        }
    }
}

/// A memory model: the set of pointer semantics under test.
///
/// The interpreter owns memory, scopes and control flow; every *pointer*
/// operation — creation, arithmetic, dereference, conversion to and from
/// integers, spilling to memory — is delegated here. Implementations are
/// listed in [`ModelKind`].
pub trait MemoryModel {
    /// Which model this is.
    fn kind(&self) -> ModelKind;

    /// Layout parameters (pointer size/alignment, `intptr_t` representation).
    fn target(&self) -> TargetInfo;

    /// `true` if pointers are capabilities stored via tagged memory.
    fn stores_caps(&self) -> bool {
        false
    }

    /// `true` if pointer metadata spills into the machine-managed shadow
    /// table ([`ShadowEntry`]) when a pointer is written to memory.
    fn uses_shadow(&self) -> bool {
        false
    }

    /// `true` if arithmetic on `intcap_t` values is representable
    /// (CHERIv3 yes — via the offset; CHERIv2 no — store/load only, §5.1).
    fn intcap_arith_allowed(&self) -> bool {
        true
    }

    /// `true` if the model enforces `const` at runtime (original CHERIv2
    /// compiler behaviour that "broke a large amount of code", §4.1).
    fn enforces_const(&self) -> bool {
        false
    }

    /// A fresh pointer to a new object `[base, base+len)` of type `ty`
    /// (`ty` is the pointer type, for permission derivation).
    fn make_ptr(&self, base: u64, len: u64, ty: &Type) -> PtrVal;

    /// Re-qualifies a pointer when it is converted/assigned to type `ty`
    /// (e.g. CHERI dropping store permission for `__input`).
    fn adjust_for_type(&self, p: PtrVal, ty: &Type) -> PtrVal;

    /// `p + delta` in bytes.
    ///
    /// # Errors
    ///
    /// Models that cannot represent the result (CHERIv2 subtraction or
    /// out-of-bounds increment) refuse here.
    fn ptr_add(&self, p: &PtrVal, delta: i64) -> Result<PtrVal, ModelError>;

    /// `a - b` in bytes.
    ///
    /// # Errors
    ///
    /// CHERIv2 cannot subtract pointers at all.
    fn ptr_diff(&self, a: &PtrVal, b: &PtrVal) -> Result<i64, ModelError>;

    /// Derives a pointer to a field at `off` with size `size`. MPX narrows
    /// the bounds to the field (which is what breaks **Container**); other
    /// models treat this as plain arithmetic.
    ///
    /// # Errors
    ///
    /// As for [`MemoryModel::ptr_add`].
    fn narrow_field(&self, p: &PtrVal, off: u64, size: u64) -> Result<PtrVal, ModelError> {
        let _ = size;
        self.ptr_add(p, off as i64)
    }

    /// Validates an access of `len` bytes through `p`, returning the
    /// virtual address to read or write.
    ///
    /// # Errors
    ///
    /// The model's bounds/tag/permission discipline.
    fn deref(
        &self,
        ctx: &ModelCtx<'_>,
        p: &PtrVal,
        len: u64,
        write: bool,
    ) -> Result<u64, ModelError>;

    /// Converts a pointer to a plain integer of `width` bytes (the **Int**
    /// and **Wide** idioms). Provenance travels on the result where the
    /// scheme supports it.
    ///
    /// # Errors
    ///
    /// None today; reserved for models that forbid the conversion.
    fn ptr_to_int(&self, p: &PtrVal, width: u8, signed: bool) -> Result<IntValue, ModelError>;

    /// Reconstructs a pointer from an integer (the reverse direction).
    ///
    /// # Errors
    ///
    /// Fail-closed models refuse lost or modified provenance.
    fn int_to_ptr(&self, ctx: &ModelCtx<'_>, v: &IntValue, ty: &Type)
        -> Result<PtrVal, ModelError>;

    /// Materializes a pointer loaded from memory, given the raw bits and
    /// the shadow entry (if any) recorded at the storage address.
    fn load_ptr_bits(&self, ctx: &ModelCtx<'_>, bits: u64, shadow: Option<&ShadowEntry>) -> PtrVal;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_build() {
        for k in ModelKind::ALL {
            let m = k.build();
            assert_eq!(m.kind(), k);
            assert!(!k.display_name().is_empty());
        }
    }

    #[test]
    fn ctx_object_lookup() {
        let mut objects = BTreeMap::new();
        objects.insert(0x100, 0x10u64);
        objects.insert(0x200, 0x8u64);
        let ctx = ModelCtx { objects: &objects };
        assert_eq!(ctx.object_containing(0x100), Some((0x100, 0x10)));
        assert_eq!(ctx.object_containing(0x10F), Some((0x100, 0x10)));
        assert_eq!(ctx.object_containing(0x110), None);
        assert_eq!(ctx.object_containing(0x207), Some((0x200, 8)));
        assert_eq!(ctx.object_containing(0x50), None);
    }

    #[test]
    fn model_error_display() {
        let e = ModelError::new("bounds", "access past end");
        assert!(e.to_string().contains("bounds"));
    }
}
