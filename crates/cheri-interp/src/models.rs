//! The seven memory-model implementations.

use crate::layout::TargetInfo;
use crate::model::{MemoryModel, ModelCtx, ModelError, ModelKind, ShadowEntry};
use crate::value::{IntValue, Prov, PtrVal};
use cheri_c::{CapQual, Type};
use cheri_cap::{CapError, Capability, Perms};

/// Instantiates the model for `kind`.
pub fn build(kind: ModelKind) -> Box<dyn MemoryModel> {
    match kind {
        ModelKind::Pdp11 => Box::new(Pdp11),
        ModelKind::HardBound => Box::new(HardBound),
        ModelKind::Mpx => Box::new(Mpx),
        ModelKind::Relaxed => Box::new(Relaxed),
        ModelKind::Strict => Box::new(Strict),
        ModelKind::CheriV2 => Box::new(Cheri { v3: false }),
        ModelKind::CheriV3 => Box::new(Cheri { v3: true }),
    }
}

fn fat_add(p: &PtrVal, delta: i64) -> PtrVal {
    match *p {
        PtrVal::Plain { addr } => PtrVal::Plain {
            addr: addr.wrapping_add(delta as u64),
        },
        PtrVal::Fat { addr, base, len } => PtrVal::Fat {
            addr: addr.wrapping_add(delta as u64),
            base,
            len,
        },
        PtrVal::Cap(_) => unreachable!("fat models never hold capabilities"),
    }
}

fn fat_check(p: &PtrVal, len: u64, fail_open_plain: bool) -> Result<u64, ModelError> {
    match *p {
        PtrVal::Plain { addr } => {
            if fail_open_plain {
                Ok(addr) // metadata lost: MPX checks succeed unconditionally
            } else {
                Err(ModelError::new(
                    "provenance",
                    format!("unbounded pointer {addr:#x}"),
                ))
            }
        }
        PtrVal::Fat {
            addr,
            base,
            len: olen,
        } => {
            if olen == 0 {
                return Err(ModelError::new(
                    "provenance",
                    format!("pointer {addr:#x} lost its bounds; failing closed"),
                ));
            }
            if addr >= base && addr.wrapping_add(len) <= base + olen {
                Ok(addr)
            } else {
                Err(ModelError::new(
                    "bounds",
                    format!(
                        "access of {len} at {addr:#x} outside [{base:#x}, {:#x})",
                        base + olen
                    ),
                ))
            }
        }
        PtrVal::Cap(_) => unreachable!("fat models never hold capabilities"),
    }
}

fn plain_int(p: &PtrVal, width: u8, signed: bool, with_prov: bool) -> IntValue {
    let mut iv = IntValue::new(p.addr() as i64, width, signed);
    if with_prov && width == 8 {
        if let PtrVal::Fat { base, len, .. } = *p {
            if len != 0 {
                iv.prov = Some(Prov {
                    base,
                    len,
                    modified: false,
                });
            }
        }
    }
    iv
}

// --- PDP-11 -----------------------------------------------------------

/// Pointers are integers; nothing is checked (beyond the machine's
/// unmapped-page faults). The memory model of the original C target and of
/// contemporary x86/MIPS implementations.
struct Pdp11;

impl MemoryModel for Pdp11 {
    fn kind(&self) -> ModelKind {
        ModelKind::Pdp11
    }

    fn target(&self) -> TargetInfo {
        TargetInfo::lp64()
    }

    fn make_ptr(&self, base: u64, _len: u64, _ty: &Type) -> PtrVal {
        PtrVal::Plain { addr: base }
    }

    fn adjust_for_type(&self, p: PtrVal, _ty: &Type) -> PtrVal {
        p
    }

    fn ptr_add(&self, p: &PtrVal, delta: i64) -> Result<PtrVal, ModelError> {
        Ok(PtrVal::Plain {
            addr: p.addr().wrapping_add(delta as u64),
        })
    }

    fn ptr_diff(&self, a: &PtrVal, b: &PtrVal) -> Result<i64, ModelError> {
        Ok(a.addr().wrapping_sub(b.addr()) as i64)
    }

    fn deref(
        &self,
        _ctx: &ModelCtx<'_>,
        p: &PtrVal,
        _len: u64,
        _write: bool,
    ) -> Result<u64, ModelError> {
        Ok(p.addr())
    }

    fn ptr_to_int(&self, p: &PtrVal, width: u8, signed: bool) -> Result<IntValue, ModelError> {
        Ok(plain_int(p, width, signed, false))
    }

    fn int_to_ptr(
        &self,
        _ctx: &ModelCtx<'_>,
        v: &IntValue,
        _ty: &Type,
    ) -> Result<PtrVal, ModelError> {
        Ok(PtrVal::Plain { addr: v.v })
    }

    fn load_ptr_bits(
        &self,
        _ctx: &ModelCtx<'_>,
        bits: u64,
        _shadow: Option<&ShadowEntry>,
    ) -> PtrVal {
        PtrVal::Plain { addr: bits }
    }
}

// --- HardBound ---------------------------------------------------------

/// Fat pointers whose metadata shadows every memory word; provenance lost
/// through integer arithmetic makes the pointer unusable — **fail closed**.
struct HardBound;

impl MemoryModel for HardBound {
    fn kind(&self) -> ModelKind {
        ModelKind::HardBound
    }

    fn target(&self) -> TargetInfo {
        TargetInfo::lp64()
    }

    fn uses_shadow(&self) -> bool {
        true
    }

    fn make_ptr(&self, base: u64, len: u64, _ty: &Type) -> PtrVal {
        PtrVal::Fat {
            addr: base,
            base,
            len,
        }
    }

    fn adjust_for_type(&self, p: PtrVal, _ty: &Type) -> PtrVal {
        p
    }

    fn ptr_add(&self, p: &PtrVal, delta: i64) -> Result<PtrVal, ModelError> {
        Ok(fat_add(p, delta))
    }

    fn ptr_diff(&self, a: &PtrVal, b: &PtrVal) -> Result<i64, ModelError> {
        Ok(a.addr().wrapping_sub(b.addr()) as i64)
    }

    fn deref(
        &self,
        _ctx: &ModelCtx<'_>,
        p: &PtrVal,
        len: u64,
        _write: bool,
    ) -> Result<u64, ModelError> {
        fat_check(p, len, false)
    }

    fn ptr_to_int(&self, p: &PtrVal, width: u8, signed: bool) -> Result<IntValue, ModelError> {
        Ok(plain_int(p, width, signed, true))
    }

    fn int_to_ptr(
        &self,
        _ctx: &ModelCtx<'_>,
        v: &IntValue,
        _ty: &Type,
    ) -> Result<PtrVal, ModelError> {
        match v.prov {
            Some(Prov {
                base,
                len,
                modified: false,
            }) => Ok(PtrVal::Fat {
                addr: v.v,
                base,
                len,
            }),
            _ => Ok(PtrVal::Fat {
                addr: v.v,
                base: 0,
                len: 0,
            }), // fail closed at deref
        }
    }

    fn load_ptr_bits(
        &self,
        _ctx: &ModelCtx<'_>,
        bits: u64,
        shadow: Option<&ShadowEntry>,
    ) -> PtrVal {
        match shadow {
            Some(e) if e.bits == bits => PtrVal::Fat {
                addr: bits,
                base: e.base,
                len: e.len,
            },
            _ => PtrVal::Fat {
                addr: bits,
                base: 0,
                len: 0,
            },
        }
    }
}

// --- Intel MPX ---------------------------------------------------------

/// Bounds in look-aside tables; a mismatch between the stored pointer and
/// the table entry makes checks succeed unconditionally — **fail open**.
/// Member access narrows bounds to the member's static type, which is what
/// breaks `container_of` (§5.1).
struct Mpx;

impl MemoryModel for Mpx {
    fn kind(&self) -> ModelKind {
        ModelKind::Mpx
    }

    fn target(&self) -> TargetInfo {
        TargetInfo::lp64()
    }

    fn uses_shadow(&self) -> bool {
        true
    }

    fn make_ptr(&self, base: u64, len: u64, _ty: &Type) -> PtrVal {
        PtrVal::Fat {
            addr: base,
            base,
            len,
        }
    }

    fn adjust_for_type(&self, p: PtrVal, _ty: &Type) -> PtrVal {
        p
    }

    fn ptr_add(&self, p: &PtrVal, delta: i64) -> Result<PtrVal, ModelError> {
        Ok(fat_add(p, delta))
    }

    fn ptr_diff(&self, a: &PtrVal, b: &PtrVal) -> Result<i64, ModelError> {
        Ok(a.addr().wrapping_sub(b.addr()) as i64)
    }

    fn narrow_field(&self, p: &PtrVal, off: u64, size: u64) -> Result<PtrVal, ModelError> {
        // The compiler emits BNDMK for the member's own extent — but only
        // after the usual BNDCL/BNDCU of the field against the pointer's
        // *current* bounds. A field "derived" outside those bounds keeps
        // them, so the subsequent access faults (this is what breaks
        // container_of, §5.1).
        let addr = p.addr().wrapping_add(off);
        Ok(match *p {
            PtrVal::Plain { .. } => PtrVal::Plain { addr },
            PtrVal::Fat { base, len, .. } => {
                if addr >= base && addr.wrapping_add(size) <= base + len {
                    PtrVal::Fat {
                        addr,
                        base: addr,
                        len: size,
                    }
                } else {
                    PtrVal::Fat { addr, base, len }
                }
            }
            PtrVal::Cap(_) => unreachable!("fat models never hold capabilities"),
        })
    }

    fn deref(
        &self,
        _ctx: &ModelCtx<'_>,
        p: &PtrVal,
        len: u64,
        _write: bool,
    ) -> Result<u64, ModelError> {
        fat_check(p, len, true)
    }

    fn ptr_to_int(&self, p: &PtrVal, width: u8, signed: bool) -> Result<IntValue, ModelError> {
        Ok(plain_int(p, width, signed, true))
    }

    fn int_to_ptr(
        &self,
        _ctx: &ModelCtx<'_>,
        v: &IntValue,
        _ty: &Type,
    ) -> Result<PtrVal, ModelError> {
        match v.prov {
            Some(Prov {
                base,
                len,
                modified: false,
            }) => Ok(PtrVal::Fat {
                addr: v.v,
                base,
                len,
            }),
            // Metadata desynchronized: checks pass unconditionally.
            _ => Ok(PtrVal::Plain { addr: v.v }),
        }
    }

    fn load_ptr_bits(
        &self,
        _ctx: &ModelCtx<'_>,
        bits: u64,
        shadow: Option<&ShadowEntry>,
    ) -> PtrVal {
        match shadow {
            Some(e) if e.bits == bits => PtrVal::Fat {
                addr: bits,
                base: e.base,
                len: e.len,
            },
            _ => PtrVal::Plain { addr: bits },
        }
    }
}

// --- Relaxed -----------------------------------------------------------

/// "Allows pointers to be constructed from integer values as long as the
/// object is still valid" (§5): dereference looks the address up in the
/// live-object map. Accidentally *valid but wrong* pointers are possible —
/// the paper's criticism of this point in the design space.
struct Relaxed;

impl MemoryModel for Relaxed {
    fn kind(&self) -> ModelKind {
        ModelKind::Relaxed
    }

    fn target(&self) -> TargetInfo {
        TargetInfo::lp64()
    }

    fn make_ptr(&self, base: u64, _len: u64, _ty: &Type) -> PtrVal {
        PtrVal::Plain { addr: base }
    }

    fn adjust_for_type(&self, p: PtrVal, _ty: &Type) -> PtrVal {
        p
    }

    fn ptr_add(&self, p: &PtrVal, delta: i64) -> Result<PtrVal, ModelError> {
        Ok(PtrVal::Plain {
            addr: p.addr().wrapping_add(delta as u64),
        })
    }

    fn ptr_diff(&self, a: &PtrVal, b: &PtrVal) -> Result<i64, ModelError> {
        Ok(a.addr().wrapping_sub(b.addr()) as i64)
    }

    fn deref(
        &self,
        ctx: &ModelCtx<'_>,
        p: &PtrVal,
        len: u64,
        _write: bool,
    ) -> Result<u64, ModelError> {
        let addr = p.addr();
        match ctx.object_containing(addr) {
            Some((base, olen)) if addr.wrapping_add(len) <= base + olen => Ok(addr),
            _ => Err(ModelError::new(
                "bounds",
                format!("{addr:#x} is not within any live object"),
            )),
        }
    }

    fn ptr_to_int(&self, p: &PtrVal, width: u8, signed: bool) -> Result<IntValue, ModelError> {
        Ok(plain_int(p, width, signed, false))
    }

    fn int_to_ptr(
        &self,
        _ctx: &ModelCtx<'_>,
        v: &IntValue,
        _ty: &Type,
    ) -> Result<PtrVal, ModelError> {
        Ok(PtrVal::Plain { addr: v.v })
    }

    fn load_ptr_bits(
        &self,
        _ctx: &ModelCtx<'_>,
        bits: u64,
        _shadow: Option<&ShadowEntry>,
    ) -> PtrVal {
        PtrVal::Plain { addr: bits }
    }
}

// --- Strict ------------------------------------------------------------

/// The paper's "ideal interpretation of the C standard": pointers may round
/// trip through integers **only if unmodified**; any arithmetic invalidates
/// them. Fails closed.
struct Strict;

impl MemoryModel for Strict {
    fn kind(&self) -> ModelKind {
        ModelKind::Strict
    }

    fn target(&self) -> TargetInfo {
        TargetInfo::lp64()
    }

    fn uses_shadow(&self) -> bool {
        true
    }

    fn make_ptr(&self, base: u64, len: u64, _ty: &Type) -> PtrVal {
        PtrVal::Fat {
            addr: base,
            base,
            len,
        }
    }

    fn adjust_for_type(&self, p: PtrVal, _ty: &Type) -> PtrVal {
        p
    }

    fn ptr_add(&self, p: &PtrVal, delta: i64) -> Result<PtrVal, ModelError> {
        Ok(fat_add(p, delta))
    }

    fn ptr_diff(&self, a: &PtrVal, b: &PtrVal) -> Result<i64, ModelError> {
        Ok(a.addr().wrapping_sub(b.addr()) as i64)
    }

    fn deref(
        &self,
        _ctx: &ModelCtx<'_>,
        p: &PtrVal,
        len: u64,
        _write: bool,
    ) -> Result<u64, ModelError> {
        fat_check(p, len, false)
    }

    fn ptr_to_int(&self, p: &PtrVal, width: u8, signed: bool) -> Result<IntValue, ModelError> {
        Ok(plain_int(p, width, signed, true))
    }

    fn int_to_ptr(
        &self,
        _ctx: &ModelCtx<'_>,
        v: &IntValue,
        _ty: &Type,
    ) -> Result<PtrVal, ModelError> {
        match v.prov {
            Some(Prov {
                base,
                len,
                modified: false,
            }) => Ok(PtrVal::Fat {
                addr: v.v,
                base,
                len,
            }),
            _ => Ok(PtrVal::Fat {
                addr: v.v,
                base: 0,
                len: 0,
            }),
        }
    }

    fn load_ptr_bits(
        &self,
        _ctx: &ModelCtx<'_>,
        bits: u64,
        shadow: Option<&ShadowEntry>,
    ) -> PtrVal {
        match shadow {
            Some(e) if e.bits == bits => PtrVal::Fat {
                addr: bits,
                base: e.base,
                len: e.len,
            },
            _ => PtrVal::Fat {
                addr: bits,
                base: 0,
                len: 0,
            },
        }
    }
}

// --- CHERI (v2 and v3) --------------------------------------------------

/// Capabilities. `v3` adds the offset field: pointer arithmetic moves the
/// offset and bounds are enforced only at dereference. Without it (v2),
/// `p + n` is `CIncBase` — monotonic — and `p - n` is unrepresentable.
struct Cheri {
    v3: bool,
}

impl Cheri {
    fn perms_for(&self, ty: &Type) -> Perms {
        match ty.cap_qual() {
            CapQual::Input => Perms::input(),
            CapQual::Output => Perms::output(),
            CapQual::Capability | CapQual::None => {
                if self.enforces_const() && ty.pointee_is_const() {
                    Perms::input()
                } else {
                    Perms::data()
                }
            }
        }
    }

    fn cap_of(p: &PtrVal) -> Capability {
        match p {
            PtrVal::Cap(c) => *c,
            // Null constants and the like reach us as plain zeros.
            PtrVal::Plain { addr } => Capability::from_int(*addr),
            PtrVal::Fat { addr, .. } => Capability::from_int(*addr),
        }
    }
}

fn cap_err(e: CapError) -> ModelError {
    let kind = match e {
        CapError::TagViolation => "tag",
        CapError::SealViolation | CapError::PermissionViolation(_) => "permission",
        CapError::BoundsViolation { .. } | CapError::MonotonicityViolation => "bounds",
        CapError::Unrepresentable(_) => "unrepresentable",
        _ => "capability",
    };
    ModelError::new(kind, e.to_string())
}

impl MemoryModel for Cheri {
    fn kind(&self) -> ModelKind {
        if self.v3 {
            ModelKind::CheriV3
        } else {
            ModelKind::CheriV2
        }
    }

    fn target(&self) -> TargetInfo {
        TargetInfo::cheri()
    }

    fn stores_caps(&self) -> bool {
        true
    }

    fn intcap_arith_allowed(&self) -> bool {
        // "The original CHERI implementation permitted only storing and
        // loading of these values." (§5.1)
        self.v3
    }

    fn enforces_const(&self) -> bool {
        // The original CHERIv2 C compiler enforced const via permissions,
        // which "broke a large amount of code" (§4.1); CHERIv3 makes const
        // advisory and provides __input instead.
        !self.v3
    }

    fn make_ptr(&self, base: u64, len: u64, ty: &Type) -> PtrVal {
        PtrVal::Cap(Capability::new_mem(base, len, self.perms_for(ty)))
    }

    fn adjust_for_type(&self, p: PtrVal, ty: &Type) -> PtrVal {
        let PtrVal::Cap(c) = p else { return p };
        let want = self.perms_for(ty);
        match c.and_perms(want) {
            Ok(adj) => PtrVal::Cap(adj),
            Err(_) => p, // untagged/sealed values pass through unchanged
        }
    }

    fn ptr_add(&self, p: &PtrVal, delta: i64) -> Result<PtrVal, ModelError> {
        let c = Self::cap_of(p);
        if self.v3 {
            return Ok(PtrVal::Cap(c.inc_offset(delta).map_err(cap_err)?));
        }
        // CHERIv2: addition consumes bounds; subtraction is unrepresentable.
        if delta < 0 {
            return Err(ModelError::new(
                "unrepresentable",
                "CHERIv2 capabilities cannot move backwards (pointer subtraction)",
            ));
        }
        if delta == 0 {
            return Ok(PtrVal::Cap(c));
        }
        Ok(PtrVal::Cap(c.inc_base(delta as u64).map_err(cap_err)?))
    }

    fn ptr_diff(&self, a: &PtrVal, b: &PtrVal) -> Result<i64, ModelError> {
        if !self.v3 {
            return Err(ModelError::new(
                "unrepresentable",
                "CHERIv2 does not support pointer subtraction",
            ));
        }
        Ok(Self::cap_of(a)
            .address()
            .wrapping_sub(Self::cap_of(b).address()) as i64)
    }

    fn deref(
        &self,
        _ctx: &ModelCtx<'_>,
        p: &PtrVal,
        len: u64,
        write: bool,
    ) -> Result<u64, ModelError> {
        let c = Self::cap_of(p);
        let perm = if write { Perms::STORE } else { Perms::LOAD };
        c.check_access(len, perm).map_err(cap_err)
    }

    fn ptr_to_int(&self, p: &PtrVal, width: u8, signed: bool) -> Result<IntValue, ModelError> {
        // The capability does not survive conversion to a *plain* integer;
        // `intcap_t` (handled by the machine) is the supported round trip.
        Ok(IntValue::new(
            Self::cap_of(p).address() as i64,
            width,
            signed,
        ))
    }

    fn int_to_ptr(
        &self,
        _ctx: &ModelCtx<'_>,
        v: &IntValue,
        _ty: &Type,
    ) -> Result<PtrVal, ModelError> {
        // An integer that is not an intcap_t derives no authority: the
        // result is an untagged capability that traps at dereference.
        Ok(PtrVal::Cap(Capability::from_int(v.v)))
    }

    fn load_ptr_bits(
        &self,
        _ctx: &ModelCtx<'_>,
        bits: u64,
        _shadow: Option<&ShadowEntry>,
    ) -> PtrVal {
        // Capabilities load through tagged memory, not through raw bits;
        // reaching here means the storage was overwritten by data.
        PtrVal::Cap(Capability::from_int(bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn ctx_with(objs: &[(u64, u64)]) -> BTreeMap<u64, u64> {
        objs.iter().copied().collect()
    }

    fn ty_ip() -> Type {
        Type::ptr_to(Type::int())
    }

    #[test]
    fn pdp11_never_checks() {
        let m = build(ModelKind::Pdp11);
        let p = m.make_ptr(0x1000, 16, &ty_ip());
        let q = m.ptr_add(&p, 1 << 20).unwrap();
        let objs = ctx_with(&[]);
        assert!(m.deref(&ModelCtx { objects: &objs }, &q, 8, true).is_ok());
    }

    #[test]
    fn hardbound_bounds_and_fail_closed() {
        let m = build(ModelKind::HardBound);
        let objs = ctx_with(&[]);
        let ctx = ModelCtx { objects: &objs };
        let p = m.make_ptr(0x1000, 16, &ty_ip());
        assert!(m.deref(&ctx, &p, 16, false).is_ok());
        let oob = m.ptr_add(&p, 16).unwrap();
        assert_eq!(m.deref(&ctx, &oob, 1, false).unwrap_err().kind, "bounds");
        // Round trip through modified integer: fail closed.
        let mut iv = m.ptr_to_int(&p, 8, false).unwrap();
        iv = iv.touch_prov();
        let back = m.int_to_ptr(&ctx, &iv, &ty_ip()).unwrap();
        assert_eq!(
            m.deref(&ctx, &back, 1, false).unwrap_err().kind,
            "provenance"
        );
    }

    #[test]
    fn hardbound_unmodified_round_trip_restores() {
        let m = build(ModelKind::HardBound);
        let objs = ctx_with(&[]);
        let ctx = ModelCtx { objects: &objs };
        let p = m.make_ptr(0x1000, 16, &ty_ip());
        let iv = m.ptr_to_int(&p, 8, false).unwrap();
        let back = m.int_to_ptr(&ctx, &iv, &ty_ip()).unwrap();
        assert!(m.deref(&ctx, &back, 8, false).is_ok());
    }

    #[test]
    fn mpx_fails_open_on_lost_metadata() {
        let m = build(ModelKind::Mpx);
        let objs = ctx_with(&[]);
        let ctx = ModelCtx { objects: &objs };
        let p = m.make_ptr(0x1000, 16, &ty_ip());
        let mut iv = m.ptr_to_int(&p, 8, false).unwrap();
        iv = iv.touch_prov();
        let back = m.int_to_ptr(&ctx, &iv, &ty_ip()).unwrap();
        // Metadata is gone, so the access is unchecked: fail open.
        assert!(m.deref(&ctx, &back, 1 << 20, false).is_ok());
    }

    #[test]
    fn mpx_narrowing_breaks_container() {
        let m = build(ModelKind::Mpx);
        let objs = ctx_with(&[]);
        let ctx = ModelCtx { objects: &objs };
        let outer = m.make_ptr(0x1000, 24, &ty_ip());
        let field = m.narrow_field(&outer, 8, 4).unwrap();
        assert!(m.deref(&ctx, &field, 4, false).is_ok());
        // container_of: subtract back to the struct start, then use it.
        let back = m.ptr_add(&field, -8).unwrap();
        assert_eq!(m.deref(&ctx, &back, 24, false).unwrap_err().kind, "bounds");
    }

    #[test]
    fn relaxed_reconstructs_from_live_objects() {
        let m = build(ModelKind::Relaxed);
        let objs = ctx_with(&[(0x1000, 16)]);
        let ctx = ModelCtx { objects: &objs };
        let iv = IntValue::new(0x1008, 8, false);
        let p = m.int_to_ptr(&ctx, &iv, &ty_ip()).unwrap();
        assert!(m.deref(&ctx, &p, 8, false).is_ok());
        // Freeing the object (removing it) kills the pointer.
        let empty = ctx_with(&[]);
        assert_eq!(
            m.deref(&ModelCtx { objects: &empty }, &p, 8, false)
                .unwrap_err()
                .kind,
            "bounds"
        );
    }

    #[test]
    fn strict_rejects_modified_round_trip() {
        let m = build(ModelKind::Strict);
        let objs = ctx_with(&[]);
        let ctx = ModelCtx { objects: &objs };
        let p = m.make_ptr(0x1000, 16, &ty_ip());
        let iv = m.ptr_to_int(&p, 8, false).unwrap();
        assert!(m
            .deref(&ctx, &m.int_to_ptr(&ctx, &iv, &ty_ip()).unwrap(), 8, false)
            .is_ok());
        let poisoned = iv.touch_prov();
        let bad = m.int_to_ptr(&ctx, &poisoned, &ty_ip()).unwrap();
        assert_eq!(
            m.deref(&ctx, &bad, 1, false).unwrap_err().kind,
            "provenance"
        );
    }

    #[test]
    fn cheriv2_monotonicity() {
        let m = build(ModelKind::CheriV2);
        let p = m.make_ptr(0x1000, 16, &ty_ip());
        assert_eq!(m.ptr_add(&p, -4).unwrap_err().kind, "unrepresentable");
        assert_eq!(m.ptr_add(&p, 32).unwrap_err().kind, "bounds");
        assert!(m.ptr_diff(&p, &p).is_err());
        assert!(!m.intcap_arith_allowed());
        assert!(m.enforces_const());
    }

    #[test]
    fn cheriv3_roams_then_checks() {
        let m = build(ModelKind::CheriV3);
        let objs = ctx_with(&[]);
        let ctx = ModelCtx { objects: &objs };
        let p = m.make_ptr(0x1000, 16, &ty_ip());
        let out = m.ptr_add(&p, 100).unwrap();
        assert_eq!(m.deref(&ctx, &out, 1, false).unwrap_err().kind, "bounds");
        let back = m.ptr_add(&out, -92).unwrap();
        assert!(m.deref(&ctx, &back, 8, false).is_ok());
        assert_eq!(m.ptr_diff(&back, &p).unwrap(), 8);
        assert!(m.intcap_arith_allowed());
        assert!(!m.enforces_const());
    }

    #[test]
    fn cheri_plain_int_round_trip_is_untagged() {
        for k in [ModelKind::CheriV2, ModelKind::CheriV3] {
            let m = build(k);
            let objs = ctx_with(&[]);
            let ctx = ModelCtx { objects: &objs };
            let p = m.make_ptr(0x1000, 16, &ty_ip());
            let iv = m.ptr_to_int(&p, 8, false).unwrap();
            let back = m.int_to_ptr(&ctx, &iv, &ty_ip()).unwrap();
            assert_eq!(m.deref(&ctx, &back, 1, false).unwrap_err().kind, "tag");
        }
    }

    #[test]
    fn cheri_const_enforcement_differs() {
        let const_ptr = Type::Ptr {
            pointee: Box::new(Type::char_()),
            is_const: true,
            qual: CapQual::None,
        };
        let objs = ctx_with(&[]);
        let ctx = ModelCtx { objects: &objs };
        // v2: store permission stripped; write traps even after deconst.
        let m2 = build(ModelKind::CheriV2);
        let p2 = m2.make_ptr(0x1000, 16, &const_ptr);
        assert_eq!(m2.deref(&ctx, &p2, 1, true).unwrap_err().kind, "permission");
        // v3: const is advisory; the write is allowed.
        let m3 = build(ModelKind::CheriV3);
        let p3 = m3.make_ptr(0x1000, 16, &const_ptr);
        assert!(m3.deref(&ctx, &p3, 1, true).is_ok());
    }

    #[test]
    fn cheri_input_qualifier_enforced_in_both() {
        let input_ptr = Type::Ptr {
            pointee: Box::new(Type::char_()),
            is_const: false,
            qual: CapQual::Input,
        };
        let objs = ctx_with(&[]);
        let ctx = ModelCtx { objects: &objs };
        for k in [ModelKind::CheriV2, ModelKind::CheriV3] {
            let m = build(k);
            let data = Type::ptr_to(Type::char_());
            let p = m.make_ptr(0x1000, 16, &data);
            let narrowed = m.adjust_for_type(p, &input_ptr);
            assert!(m.deref(&ctx, &narrowed, 1, false).is_ok());
            assert_eq!(
                m.deref(&ctx, &narrowed, 1, true).unwrap_err().kind,
                "permission"
            );
        }
    }
}
