//! The paper's "simple abstract machine interpreter" (§5): a direct AST
//! interpreter for mini-C whose **pointer semantics are pluggable**.
//!
//! "In addition to the x86 and MIPS baselines, the original CHERIv2
//! implementation, and our CHERIv3 variant, we implemented a translator for
//! C code into a simple abstract machine interpreter. This runs very slowly
//! but allows us to quickly modify the abstract machine and run the test
//! cases extracted from the idioms to see which fail." — §5
//!
//! The interpreter compiles the typed AST **once per target layout** into a
//! flat execution IR ([`lower`] → [`IrProgram`]) and dispatches over that in
//! its hot loop; all seven models share the lowering for their layout (see
//! [`LoweredUnit`] and [`run_main_all`], which also fans the independent
//! model runs out across threads). Every pointer decision still goes
//! through the active [`MemoryModel`].
//!
//! Seven interpretations of the C abstract machine are provided, matching
//! Table 3:
//!
//! | model | pointer representation | failure mode |
//! |---|---|---|
//! | [`ModelKind::Pdp11`] | plain 64-bit integer | none (memory unsafe) |
//! | [`ModelKind::HardBound`] | fat pointer + shadow table | fails **closed** |
//! | [`ModelKind::Mpx`] | fat pointer + look-aside table | fails **open** |
//! | [`ModelKind::Relaxed`] | integer + live-object map | object lookup |
//! | [`ModelKind::Strict`] | fat pointer, exact provenance | fails closed |
//! | [`ModelKind::CheriV2`] | capability (no offset) | traps |
//! | [`ModelKind::CheriV3`] | fat capability (offset) | traps at deref |
//!
//! # Example
//!
//! ```
//! use cheri_interp::{run_main, ModelKind};
//!
//! let unit = cheri_c::parse(
//!     "int main(void) { int a[4]; int *p = a + 9; p = p - 7; return *p = 7; }"
//! ).unwrap();
//! // The out-of-bounds *intermediate* (idiom II) is fine on CHERIv3...
//! assert_eq!(run_main(&unit, ModelKind::CheriV3).unwrap().exit_code, 7);
//! // ...but unrepresentable on CHERIv2, whose pointer add consumes bounds.
//! assert!(run_main(&unit, ModelKind::CheriV2).is_err());
//! ```

mod cfg;
mod ir;
mod layout;
mod lower;
mod machine;
mod model;
mod models;
mod par;
mod value;

pub use cfg::{BasicBlock, Cfg};
pub use ir::{
    BinMeta, Builtin, ConstOrigin, IrFunc, IrGlobal, IrProgram, Op, OpInfo, SlotDef, TyId,
};
pub use layout::{align_of, field_offset, size_of, TargetInfo};
pub use lower::lower;
pub use machine::{run_main, run_main_all, ExecResult, Interp, LoweredUnit, RtError};
pub use model::{MemoryModel, ModelCtx, ModelError, ModelKind, ShadowEntry};
pub use par::{fan_out_ordered, fan_out_workers};
pub use value::{IntValue, Prov, PtrVal, Value};
