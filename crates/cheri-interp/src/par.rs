//! Scoped-thread fan-out shared by the differential-harness drivers
//! (`run_main_all`, the Table 3 matrix, the Table 1 corpus sweep and the
//! idiom analyzer's per-function pass).

use std::cell::Cell;
use std::sync::OnceLock;

thread_local! {
    static IN_FAN_OUT: Cell<bool> = const { Cell::new(false) };
}

/// Worker count, probed once — the `available_parallelism` syscall is not
/// free relative to small work items — and capped at 8.
pub fn fan_out_workers() -> usize {
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        std::thread::available_parallelism()
            .map_or(1, |n| n.get())
            .min(8)
    })
}

/// Applies `f` to each item on its own scoped thread when multiple cores
/// are available, inline otherwise. Results come back in input order
/// regardless of completion order, and worker panics propagate to the
/// caller.
///
/// A fan-out nested inside another fan-out's worker runs inline: the outer
/// layer already saturates the cores, and stacking a second layer of
/// threads per worker would only add scheduler overhead.
pub fn fan_out_ordered<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let nested = IN_FAN_OUT.with(Cell::get);
    if fan_out_workers() == 1 || nested || items.len() < 2 {
        return items.iter().map(f).collect();
    }
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = items
            .iter()
            .map(|item| {
                s.spawn(move || {
                    IN_FAN_OUT.with(|c| c.set(true));
                    f(item)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..20).collect();
        let out = fan_out_ordered(&items, |&v| v * 2);
        assert_eq!(out, (0..20).map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn nested_fan_out_runs_inline() {
        let outer: Vec<u32> = (0..4).collect();
        let results = fan_out_ordered(&outer, |&o| {
            let inner: Vec<u32> = (0..3).collect();
            fan_out_ordered(&inner, |&i| o * 10 + i)
        });
        assert_eq!(results[2], vec![20, 21, 22]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let items = [1u8, 2];
        let _ = fan_out_ordered(&items, |&v| {
            assert!(v != 2, "boom");
            v
        });
    }
}
