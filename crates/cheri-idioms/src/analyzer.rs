//! The idiom static analyzer.
//!
//! Reimplements, over the typed mini-C AST, the analysis the paper built
//! into Clang/LLVM (§2): "Our modified LLVM identified all instances of
//! pointer arithmetic that survive optimization and performed some simple
//! categorization." LLVM sees `ptrtoint`/`inttoptr` pairs; we see the
//! equivalent typed casts, plus a light flow-insensitive taint pass that
//! tracks which integer variables were derived from pointers.
//!
//! Classification precedence mirrors the paper's: a subtraction whose
//! subtrahend is an `offsetof` is **Container**; a subtraction whose
//! minuend is itself pointer addition is **II** ("we have predominantly
//! classified instances as subtraction if the pointers are dereferenced
//! immediately after", §2); everything else is **Sub**.

use crate::idiom::{Idiom, IdiomCounts};
use cheri_c::{BinOp, Block, Expr, ExprKind, Stmt, TranslationUnit, Type, UnOp};
use std::collections::HashSet;

/// Functions below this count are analyzed sequentially; thread spawn
/// overhead would dominate otherwise.
const PAR_THRESHOLD: usize = 64;

/// Counts idiom occurrences in a whole translation unit.
///
/// Functions are analyzed independently (taint never crosses function
/// boundaries), so corpus-sized units fan the per-function passes out
/// across scoped threads and merge the tallies — the counts are additive,
/// making the result identical to the sequential walk. On single-core
/// hosts (or small units) the same walk runs inline.
pub fn analyze(unit: &TranslationUnit) -> IdiomCounts {
    let workers = cheri_interp::fan_out_workers();
    if unit.funcs.len() < PAR_THRESHOLD || workers == 1 {
        return analyze_funcs(&unit.funcs);
    }
    let chunk = unit.funcs.len().div_ceil(workers);
    let chunks: Vec<&[cheri_c::FuncDef]> = unit.funcs.chunks(chunk).collect();
    let partials = cheri_interp::fan_out_ordered(&chunks, |funcs| analyze_funcs(funcs));
    let mut counts = IdiomCounts::new();
    for p in &partials {
        counts.merge(p);
    }
    counts
}

fn analyze_funcs(funcs: &[cheri_c::FuncDef]) -> IdiomCounts {
    let mut counts = IdiomCounts::new();
    for f in funcs {
        let mut a = FuncAnalyzer {
            taint: HashSet::new(),
            counts: &mut counts,
        };
        a.collect_taint(&f.body);
        a.walk_block(&f.body);
    }
    counts
}

struct FuncAnalyzer<'a> {
    taint: HashSet<String>,
    counts: &'a mut IdiomCounts,
}

fn is_narrow_int(ty: &Type) -> bool {
    matches!(ty, Type::Int { width, .. } if *width < 8)
}

fn is_wide_int(ty: &Type) -> bool {
    matches!(
        ty,
        Type::Int { width: 8, .. } | Type::IntPtr { .. } | Type::IntCap { .. }
    )
}

impl FuncAnalyzer<'_> {
    /// `true` if `e` (an integer-typed expression) derives from a pointer.
    fn derived(&self, e: &Expr) -> bool {
        match &e.kind {
            ExprKind::Cast(to, inner) => {
                (to.is_integer() && inner.ty.decay().is_pointer()) || self.derived(inner)
            }
            ExprKind::Ident(n) => self.taint.contains(n),
            ExprKind::Binary(_, a, b) => self.derived(a) || self.derived(b),
            ExprKind::Unary(UnOp::Neg | UnOp::BitNot, inner) => self.derived(inner),
            ExprKind::Ternary(_, a, b) => self.derived(a) || self.derived(b),
            ExprKind::Assign(_, _, rhs) => self.derived(rhs),
            _ => false,
        }
    }

    /// Flow-insensitive taint collection: integer variables assigned
    /// pointer-derived values (two passes reach the fixpoint for the
    /// assignment chains that occur in practice).
    fn collect_taint(&mut self, b: &Block) {
        for _ in 0..2 {
            self.taint_block(b);
        }
    }

    fn taint_block(&mut self, b: &Block) {
        for s in &b.stmts {
            self.taint_stmt(s);
        }
    }

    fn taint_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Decl {
                name,
                ty,
                init: Some(e),
                ..
            } if (is_wide_int(ty) || is_narrow_int(ty)) && self.derived(e) => {
                self.taint.insert(name.clone());
            }
            Stmt::Expr(e) => self.taint_expr(e),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.taint_expr(cond);
                self.taint_block(then_branch);
                if let Some(e) = else_branch {
                    self.taint_block(e);
                }
            }
            Stmt::While { cond, body } => {
                self.taint_expr(cond);
                self.taint_block(body);
            }
            Stmt::DoWhile { body, cond } => {
                self.taint_block(body);
                self.taint_expr(cond);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    self.taint_stmt(i);
                }
                if let Some(c) = cond {
                    self.taint_expr(c);
                }
                if let Some(st) = step {
                    self.taint_expr(st);
                }
                self.taint_block(body);
            }
            Stmt::Return(Some(e), _) => self.taint_expr(e),
            Stmt::Block(b) => self.taint_block(b),
            _ => {}
        }
    }

    fn taint_expr(&mut self, e: &Expr) {
        if let ExprKind::Assign(_, lhs, rhs) = &e.kind {
            if let ExprKind::Ident(n) = &lhs.kind {
                if (is_wide_int(&lhs.ty) || is_narrow_int(&lhs.ty)) && self.derived(rhs) {
                    self.taint.insert(n.clone());
                }
            }
        }
        self.visit_children(e, |a, c| a.taint_expr(c));
    }

    fn visit_children(&mut self, e: &Expr, mut f: impl FnMut(&mut Self, &Expr)) {
        match &e.kind {
            ExprKind::Unary(_, a) | ExprKind::Cast(_, a) | ExprKind::SizeofExpr(a) => f(self, a),
            ExprKind::Binary(_, a, b) | ExprKind::Assign(_, a, b) | ExprKind::Index(a, b) => {
                f(self, a);
                f(self, b);
            }
            ExprKind::Ternary(a, b, c) => {
                f(self, a);
                f(self, b);
                f(self, c);
            }
            ExprKind::Call(_, args) => {
                for a in args {
                    f(self, a);
                }
            }
            ExprKind::Member { base, .. } => f(self, base),
            ExprKind::IncDec { target, .. } => f(self, target),
            _ => {}
        }
    }

    // --- Counting pass ---

    fn walk_block(&mut self, b: &Block) {
        for s in &b.stmts {
            self.walk_stmt(s);
        }
    }

    fn walk_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Decl {
                ty, init: Some(e), ..
            } => {
                self.note_int_store(ty, e);
                self.walk_expr(e);
            }
            Stmt::Expr(e) => self.walk_expr(e),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.walk_expr(cond);
                self.walk_block(then_branch);
                if let Some(b) = else_branch {
                    self.walk_block(b);
                }
            }
            Stmt::While { cond, body } => {
                self.walk_expr(cond);
                self.walk_block(body);
            }
            Stmt::DoWhile { body, cond } => {
                self.walk_block(body);
                self.walk_expr(cond);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    self.walk_stmt(i);
                }
                if let Some(c) = cond {
                    self.walk_expr(c);
                }
                if let Some(st) = step {
                    self.walk_expr(st);
                }
                self.walk_block(body);
            }
            Stmt::Return(Some(e), _) => self.walk_expr(e),
            Stmt::Block(b) => self.walk_block(b),
            _ => {}
        }
    }

    /// **Int**: a pointer cast directly stored into an integer variable.
    fn note_int_store(&mut self, target_ty: &Type, rhs: &Expr) {
        if !is_wide_int(target_ty) {
            return;
        }
        if let ExprKind::Cast(to, inner) = &rhs.kind {
            if to.is_integer() && inner.ty.decay().is_pointer() {
                self.counts.bump(Idiom::Int);
            }
        }
    }

    fn walk_expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Cast(to, inner) => {
                // Deconst: pointer cast that strips a const qualifier.
                if let (
                    Type::Ptr {
                        is_const: false, ..
                    },
                    Type::Ptr { is_const: true, .. },
                ) = (to, &inner.ty.decay())
                {
                    self.counts.bump(Idiom::Deconst);
                }
                // Wide: pointer (or pointer-derived wide value) squeezed
                // into a narrower integer — the lossy truncation itself.
                if is_narrow_int(to)
                    && (inner.ty.decay().is_pointer()
                        || (is_wide_int(&inner.ty) && self.derived(inner)))
                {
                    self.counts.bump(Idiom::Wide);
                }
            }
            ExprKind::Assign(_, lhs, rhs) => {
                self.note_int_store(&lhs.ty, rhs);
            }
            ExprKind::Binary(op, a, b) => {
                let a_ptr = a.ty.decay().is_pointer();
                let b_ptr = b.ty.decay().is_pointer();
                match op {
                    BinOp::Sub if a_ptr => {
                        if matches!(b.kind, ExprKind::Offsetof(..)) {
                            self.counts.bump(Idiom::Container);
                        } else if matches!(
                            a.kind,
                            ExprKind::Binary(BinOp::Add, ref l, _) if l.ty.decay().is_pointer()
                        ) {
                            self.counts.bump(Idiom::II);
                        } else {
                            self.counts.bump(Idiom::Sub);
                        }
                    }
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem
                        if !a_ptr && !b_ptr && (self.derived(a) || self.derived(b)) =>
                    {
                        self.counts.bump(Idiom::IA);
                    }
                    BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor
                        if self.derived(a) || self.derived(b) =>
                    {
                        self.counts.bump(Idiom::Mask);
                    }
                    _ => {}
                }
            }
            _ => {}
        }
        self.visit_children(e, |a, c| a.walk_expr(c));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(src: &str) -> IdiomCounts {
        analyze(&cheri_c::parse(src).unwrap())
    }

    #[test]
    fn deconst_detected() {
        let c = counts("char *f(const char *p) { return (char*)p; }");
        assert_eq!(c.get(Idiom::Deconst), 1);
        assert_eq!(c.total(), 1);
    }

    #[test]
    fn const_preserving_cast_not_flagged() {
        let c = counts("const char *f(const char *p) { return (const char*)p; }");
        assert_eq!(c.get(Idiom::Deconst), 0);
    }

    #[test]
    fn container_detected_and_not_double_counted() {
        let c = counts(
            "struct box { int tag; int member; };
             struct box *f(int *m) {
                 return (struct box*)((char*)m - offsetof(struct box, member));
             }",
        );
        assert_eq!(c.get(Idiom::Container), 1);
        assert_eq!(c.get(Idiom::Sub), 0);
        assert_eq!(c.total(), 1);
    }

    #[test]
    fn sub_detected() {
        let c = counts("long f(char *a, char *b) { return a - b; }");
        assert_eq!(c.get(Idiom::Sub), 1);
        let c2 = counts("int *g(int *p, int n) { return p - n; }");
        assert_eq!(c2.get(Idiom::Sub), 1);
    }

    #[test]
    fn ii_classified_before_sub() {
        let c = counts("int f(int *p) { return *(p + 9 - 7); }");
        assert_eq!(c.get(Idiom::II), 1);
        assert_eq!(c.get(Idiom::Sub), 0);
    }

    #[test]
    fn int_detected_on_store_only() {
        let stored = counts("long f(int *p) { long x = (long)p; return x; }");
        assert_eq!(stored.get(Idiom::Int), 1);
        // A pointer cast that is *not* stored in a variable is not INT.
        let unstored = counts("long g(int *p) { return (long)p + 8; }");
        assert_eq!(unstored.get(Idiom::Int), 0);
        assert_eq!(unstored.get(Idiom::IA), 1);
    }

    #[test]
    fn ia_via_tainted_variable() {
        let c = counts(
            "long f(int *p) {
                long x = (long)p;
                x = x + 16;
                return x;
             }",
        );
        assert_eq!(c.get(Idiom::Int), 1);
        assert_eq!(c.get(Idiom::IA), 1);
    }

    #[test]
    fn mask_detected() {
        let c = counts("long f(char *p) { return (long)p & ~7; }");
        assert_eq!(c.get(Idiom::Mask), 1);
        assert_eq!(c.get(Idiom::IA), 0);
    }

    #[test]
    fn mask_via_uintptr_variable() {
        let c = counts(
            "char *f(char *p) {
                uintptr_t v = (uintptr_t)p;
                v = v | 1;
                v = v & ~(uintptr_t)1;
                return (char*)v;
             }",
        );
        assert_eq!(c.get(Idiom::Mask), 2);
        assert_eq!(c.get(Idiom::Int), 1);
    }

    #[test]
    fn wide_detected() {
        let c = counts("int f(char *p) { return (int)(long)p; }");
        assert_eq!(c.get(Idiom::Wide), 1);
        let c2 = counts(
            "int f(char *p) { unsigned int w = (unsigned int)(unsigned long)p; return (int)w; }",
        );
        assert_eq!(c2.get(Idiom::Wide), 1);
    }

    #[test]
    fn clean_code_counts_nothing() {
        let c = counts(
            "long fill(long a, long b) {
                long c = a * 3 + b;
                if (c > 10) { c -= b; }
                for (int i = 0; i < 4; i++) c += i;
                return c;
             }
             int use_ptr(int *p, int n) { return p[n] + *p; }",
        );
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn pointer_plus_int_is_not_counted() {
        // Forward arithmetic is fine under every model in Table 3's terms;
        // only subtraction and the int-domain idioms are "difficult".
        let c = counts("int f(int *p) { return *(p + 3); }");
        assert_eq!(c.total(), 0);
    }
}
