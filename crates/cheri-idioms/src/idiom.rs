//! The idiom taxonomy.

use std::fmt;

/// A problematic C pointer idiom from the paper's §2 survey.
///
/// Each goes beyond what the C11 abstract machine guarantees, relying on
/// implementation-defined (or undefined) behaviour that the PDP-11-like
/// memory model happens to honour.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Idiom {
    /// Removing the `const` qualifier from a pointer and writing.
    Deconst,
    /// `container_of`: recovering an enclosing structure from a pointer to
    /// one of its members (Linux/BSD/Windows kernel macro).
    Container,
    /// Arbitrary pointer subtraction (`p - n`, `p - q`).
    Sub,
    /// Invalid intermediate results: arithmetic leaves the object's bounds
    /// but the final dereferenced pointer is back inside.
    II,
    /// Storing a pointer in an integer variable and reconstructing it.
    Int,
    /// Integer arithmetic on a pointer stored in an integer.
    IA,
    /// Masking pointer bits (e.g. stashing flags in alignment bits).
    Mask,
    /// Storing a pointer in an integer *narrower* than the pointer.
    Wide,
}

impl Idiom {
    /// All idioms in the paper's Table 1/Table 3 column order.
    pub const ALL: [Idiom; 8] = [
        Idiom::Deconst,
        Idiom::Container,
        Idiom::Sub,
        Idiom::II,
        Idiom::Int,
        Idiom::IA,
        Idiom::Mask,
        Idiom::Wide,
    ];

    /// The column label used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Idiom::Deconst => "DECONST",
            Idiom::Container => "CONTAINER",
            Idiom::Sub => "SUB",
            Idiom::II => "II",
            Idiom::Int => "INT",
            Idiom::IA => "IA",
            Idiom::Mask => "MASK",
            Idiom::Wide => "WIDE",
        }
    }

    /// One-line description (from §2).
    pub fn description(self) -> &'static str {
        match self {
            Idiom::Deconst => "removes the const qualifier from a pointer",
            Idiom::Container => "recovers an enclosing structure from a member pointer",
            Idiom::Sub => "arbitrary pointer subtraction",
            Idiom::II => "invalid intermediate results during pointer arithmetic",
            Idiom::Int => "stores a pointer in an integer variable",
            Idiom::IA => "performs integer arithmetic on pointers",
            Idiom::Mask => "masks pointer bits to store data in them",
            Idiom::Wide => "stores a pointer in a narrower integer",
        }
    }

    /// Index in [`Idiom::ALL`].
    pub fn index(self) -> usize {
        Idiom::ALL
            .iter()
            .position(|&i| i == self)
            .expect("idiom in ALL")
    }
}

impl fmt::Display for Idiom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Occurrence counts per idiom, as the analyzer reports for one
/// translation unit or one package.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IdiomCounts {
    counts: [u64; 8],
}

impl IdiomCounts {
    /// An all-zero tally.
    pub fn new() -> IdiomCounts {
        IdiomCounts::default()
    }

    /// The count for `idiom`.
    pub fn get(&self, idiom: Idiom) -> u64 {
        self.counts[idiom.index()]
    }

    /// Increments `idiom` by one.
    pub fn bump(&mut self, idiom: Idiom) {
        self.counts[idiom.index()] += 1;
    }

    /// Adds another tally into this one.
    pub fn merge(&mut self, other: &IdiomCounts) {
        for (a, b) in self.counts.iter_mut().zip(other.counts) {
            *a += b;
        }
    }

    /// Sum over all idioms.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

impl fmt::Display for IdiomCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, idiom) in Idiom::ALL.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}={}", idiom.label(), self.counts[i])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_idioms_distinct_labels() {
        let mut labels: Vec<&str> = Idiom::ALL.iter().map(|i| i.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 8);
    }

    #[test]
    fn counts_roundtrip() {
        let mut c = IdiomCounts::new();
        c.bump(Idiom::Sub);
        c.bump(Idiom::Sub);
        c.bump(Idiom::Wide);
        assert_eq!(c.get(Idiom::Sub), 2);
        assert_eq!(c.get(Idiom::Wide), 1);
        assert_eq!(c.get(Idiom::Mask), 0);
        assert_eq!(c.total(), 3);
        let mut d = IdiomCounts::new();
        d.bump(Idiom::Sub);
        d.merge(&c);
        assert_eq!(d.get(Idiom::Sub), 3);
    }

    #[test]
    fn display_mentions_labels() {
        let mut c = IdiomCounts::new();
        c.bump(Idiom::Mask);
        let s = c.to_string();
        assert!(s.contains("MASK=1"));
        assert!(s.contains("SUB=0"));
    }
}
