//! The extracted idiom test cases and the Table 3 support matrix.
//!
//! "We collected examples of these failures and produced the following
//! taxonomy … and extracted test cases demonstrating the common patterns."
//! (§2, §5) Each case is a self-contained mini-C program that exercises one
//! idiom and `assert`s the result the idiom's users expect; a memory model
//! *supports* the idiom iff the program runs to completion under it.
//!
//! The canonical cases use `intptr_t` where ported code would, matching the
//! evaluation context of Table 3 ("changing the `intptr_t` typedef to refer
//! to the `intcap_t` type", §5.1).

use crate::idiom::Idiom;
use cheri_interp::{run_main, LoweredUnit, ModelKind, RtError};

/// A cell of Table 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Support {
    /// Plain "yes".
    Yes,
    /// "(yes)": works with a model-specific qualification (see
    /// [`qualification`]).
    QualifiedYes,
    /// "no".
    No,
}

impl Support {
    /// Whether the test program is expected to run to completion.
    pub fn works(self) -> bool {
        !matches!(self, Support::No)
    }

    /// The cell text as printed in the paper.
    pub fn cell(self) -> &'static str {
        match self {
            Support::Yes => "yes",
            Support::QualifiedYes => "(yes)",
            Support::No => "no",
        }
    }
}

/// The canonical mini-C test case for `idiom`.
pub fn source(idiom: Idiom) -> &'static str {
    match idiom {
        Idiom::Deconst => {
            r#"
            int main(void) {
                char buf[4];
                buf[0] = 'a';
                const char *p = buf;
                char *q = (char*)p;     /* cast away const */
                *q = 'b';
                assert(buf[0] == 'b');
                return 0;
            }
            "#
        }
        Idiom::Container => {
            r#"
            struct outer { int tag; int member; };
            int main(void) {
                struct outer o;
                o.tag = 42;
                int *m = &o.member;
                struct outer *c =
                    (struct outer*)((char*)m - offsetof(struct outer, member));
                assert(c->tag == 42);
                return 0;
            }
            "#
        }
        Idiom::Sub => {
            r#"
            int main(void) {
                int a[8];
                a[3] = 7;
                int *p = &a[5];
                int *q = p - 2;          /* pointer minus integer */
                long d = p - q;          /* pointer difference */
                assert(*q == 7);
                assert(d == 2);
                return 0;
            }
            "#
        }
        Idiom::II => {
            r#"
            int main(void) {
                int a[4];
                a[2] = 9;
                int *p = a + 9;          /* invalid intermediate */
                p = p - 7;               /* back in bounds */
                assert(*p == 9);
                return 0;
            }
            "#
        }
        Idiom::Int => {
            r#"
            int main(void) {
                int x = 5;
                intptr_t v = (intptr_t)&x;   /* store pointer in integer */
                int *p = (int*)v;            /* and bring it back */
                assert(*p == 5);
                return 0;
            }
            "#
        }
        Idiom::IA => {
            r#"
            int main(void) {
                int a[4];
                a[2] = 9;
                uintptr_t v = (uintptr_t)a;
                v = v + 2 * sizeof(int);     /* arithmetic in integer space */
                int *p = (int*)v;
                assert(*p == 9);
                return 0;
            }
            "#
        }
        Idiom::Mask => {
            r#"
            int main(void) {
                long a[2];
                a[0] = 11;
                uintptr_t v = (uintptr_t)a;
                v = v | 1;                       /* stash a flag in bit 0 */
                assert((v & 1) == 1);
                uintptr_t w = v & ~(uintptr_t)1; /* mask it back off */
                long *p = (long*)w;
                assert(*p == 11);
                return 0;
            }
            "#
        }
        Idiom::Wide => {
            r#"
            int main(void) {
                int x = 7;
                int *p = &x;
                unsigned int w = (unsigned int)(unsigned long)p; /* 32-bit! */
                int *q = (int*)(unsigned long)w;
                assert(*q == 7);
                return 0;
            }
            "#
        }
    }
}

/// The paper's Table 3, row by row.
pub fn paper_expected(model: ModelKind, idiom: Idiom) -> Support {
    use Idiom::*;
    use ModelKind::*;
    use Support::*;
    match (model, idiom) {
        (_, Wide) => No,

        (Pdp11, _) => Yes,

        (HardBound, Int) => QualifiedYes,
        (HardBound, IA) | (HardBound, Mask) => No,
        (HardBound, _) => Yes,

        (Mpx, Container) => No,
        (Mpx, Int) | (Mpx, IA) | (Mpx, Mask) => QualifiedYes,
        (Mpx, _) => Yes,

        (Relaxed, _) => Yes,

        (Strict, Int) => QualifiedYes,
        (Strict, IA) | (Strict, Mask) => No,
        (Strict, _) => Yes,

        (CheriV2, Int) => QualifiedYes,
        (CheriV2, _) => No,

        (CheriV3, Int) => QualifiedYes,
        (CheriV3, _) => Yes,
    }
}

/// The parenthetical caveat behind each "(yes)" cell (§5.1 prose).
pub fn qualification(model: ModelKind, idiom: Idiom) -> Option<&'static str> {
    match (paper_expected(model, idiom), model, idiom) {
        (Support::QualifiedYes, ModelKind::CheriV2 | ModelKind::CheriV3, Idiom::Int) => {
            Some("only via intcap_t, not plain C integers")
        }
        (Support::QualifiedYes, ModelKind::Mpx, _) => {
            Some("unchecked when the bound table desynchronizes (fails open)")
        }
        (Support::QualifiedYes, ModelKind::HardBound | ModelKind::Strict, Idiom::Int) => {
            Some("only while the integer is left unmodified")
        }
        _ => None,
    }
}

/// Runs the canonical case for `idiom` under `model`.
///
/// Returns `Ok(())` when the idiom works, or the failure.
///
/// # Errors
///
/// The [`RtError`] that stopped the program, normally a model violation.
pub fn run_case(model: ModelKind, idiom: Idiom) -> Result<(), RtError> {
    let unit = cheri_c::parse(source(idiom)).expect("idiom cases always parse");
    run_main(&unit, model).map(|r| {
        assert_eq!(r.exit_code, 0, "idiom case must exit 0 when it works");
    })
}

/// One measured cell of Table 3.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MatrixCell {
    /// The model (row).
    pub model: ModelKind,
    /// The idiom (column).
    pub idiom: Idiom,
    /// Whether the canonical case ran to completion.
    pub works: bool,
    /// The failure classification when it did not.
    pub failure: Option<String>,
}

/// Runs the full 7×8 matrix.
///
/// Each idiom case is parsed and lowered **once** (the lowering is shared
/// by every model with that target layout), and the seven models — which
/// are fully independent — run on one scoped thread each. Cells come back
/// in the same deterministic (model-major, [`ModelKind::ALL`] ×
/// [`Idiom::ALL`]) order the sequential harness produced.
pub fn run_matrix() -> Vec<MatrixCell> {
    let lowered: Vec<(Idiom, LoweredUnit)> = Idiom::ALL
        .iter()
        .map(|&idiom| {
            let unit = cheri_c::parse(source(idiom)).expect("idiom cases always parse");
            (idiom, LoweredUnit::new(&unit))
        })
        .collect();
    let row = |model: ModelKind| -> Vec<MatrixCell> {
        lowered
            .iter()
            .map(|(idiom, lu)| {
                let r = lu.run(model).map(|res| {
                    assert_eq!(res.exit_code, 0, "idiom case must exit 0 when it works");
                });
                MatrixCell {
                    model,
                    idiom: *idiom,
                    works: r.is_ok(),
                    failure: r.err().map(|e| e.to_string()),
                }
            })
            .collect()
    };
    let per_model = cheri_interp::fan_out_ordered(&ModelKind::ALL, |&model| row(model));
    per_model.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cases_parse_and_pass_on_pdp11_except_wide() {
        for idiom in Idiom::ALL {
            let r = run_case(ModelKind::Pdp11, idiom);
            if idiom == Idiom::Wide {
                assert!(r.is_err(), "Wide must fail on 64-bit PDP-11 model");
            } else {
                assert!(r.is_ok(), "{idiom} should work on PDP-11: {:?}", r.err());
            }
        }
    }

    #[test]
    fn measured_matrix_matches_paper_table3() {
        for cell in run_matrix() {
            let expected = paper_expected(cell.model, cell.idiom).works();
            assert_eq!(
                cell.works, expected,
                "Table 3 mismatch at ({}, {}): measured {} expected {} ({:?})",
                cell.model, cell.idiom, cell.works, expected, cell.failure
            );
        }
    }

    #[test]
    fn cheriv3_supports_everything_but_wide() {
        for idiom in Idiom::ALL {
            let works = run_case(ModelKind::CheriV3, idiom).is_ok();
            assert_eq!(works, idiom != Idiom::Wide, "{idiom}");
        }
    }

    #[test]
    fn cheriv2_only_supports_int() {
        for idiom in Idiom::ALL {
            let works = run_case(ModelKind::CheriV2, idiom).is_ok();
            assert_eq!(works, idiom == Idiom::Int, "{idiom}");
        }
    }

    #[test]
    fn qualifications_exist_exactly_for_qualified_cells() {
        for model in ModelKind::ALL {
            for idiom in Idiom::ALL {
                let q = qualification(model, idiom);
                match paper_expected(model, idiom) {
                    Support::QualifiedYes => {
                        assert!(q.is_some(), "({model}, {idiom}) needs a qualification note")
                    }
                    _ => assert!(q.is_none(), "({model}, {idiom}) should have no note"),
                }
            }
        }
    }

    #[test]
    fn support_cells_render() {
        assert_eq!(Support::Yes.cell(), "yes");
        assert_eq!(Support::QualifiedYes.cell(), "(yes)");
        assert_eq!(Support::No.cell(), "no");
        assert!(Support::QualifiedYes.works());
        assert!(!Support::No.works());
    }
}
