//! The CRuby-porting pitfall idioms (PAPERS.md: "Adapting CRuby to
//! CHERI/Morello"): provenance-destroying patterns that real ports hit
//! beyond the paper's Table 1 taxonomy.
//!
//! Two pitfalls are modelled, each as a self-contained mini-C program in
//! the style of [`crate::cases`]:
//!
//! * **TagStripCopy** — a pointer byte-copied through a `char` buffer (the
//!   `memcpy`-into-`char[]` pattern). The raw bits survive; the tag, shadow
//!   entry or bounds metadata do not. Fail-open schemes keep running
//!   unchecked, fail-closed schemes and both CHERIs refuse the dereference.
//! * **IntRoundTrip** — a pointer stored in a **plain** `long` (not
//!   `intptr_t`) and cast back. Every 64-bit integer scheme tolerates the
//!   unmodified round trip; on CHERI the capability tag is gone the moment
//!   the value leaves `intcap_t` space, so the reconstructed pointer traps.
//!
//! The pair brackets the paper's **Int** column: `IntRoundTrip` is the
//! *unported* spelling of Int (works everywhere but CHERI), `TagStripCopy`
//! defeats even the schemes Int qualifies under.

use crate::cases::Support;
use cheri_interp::{run_main, LoweredUnit, ModelKind, RtError};
use std::fmt;

/// A CRuby-porting pitfall beyond the Table 1 taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Pitfall {
    /// Pointer byte-copied through a `char` buffer (tag-stripping memcpy).
    TagStripCopy,
    /// Pointer → plain `long` → pointer round trip.
    IntRoundTrip,
}

impl Pitfall {
    /// Both pitfalls, in matrix column order.
    pub const ALL: [Pitfall; 2] = [Pitfall::TagStripCopy, Pitfall::IntRoundTrip];

    /// Short column header.
    pub fn name(self) -> &'static str {
        match self {
            Pitfall::TagStripCopy => "TagStrip",
            Pitfall::IntRoundTrip => "IntRound",
        }
    }
}

impl fmt::Display for Pitfall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The canonical mini-C test case for `pitfall`.
pub fn source(pitfall: Pitfall) -> &'static str {
    match pitfall {
        // The copy loops run to `sizeof(int*)` so the same source is valid
        // for both the LP64 and the wider CHERI pointer layout; buf is
        // sized for the largest.
        Pitfall::TagStripCopy => {
            r#"
            int main(void) {
                int x = 5;
                int *p = &x;
                char buf[32];
                int *q;
                char *src = (char*)&p;
                char *dst = (char*)&q;
                int n = (int)sizeof(int*);
                int i;
                for (i = 0; i < n; i++) { buf[i] = src[i]; }
                for (i = 0; i < n; i++) { dst[i] = buf[i]; }
                assert(*q == 5);
                return 0;
            }
            "#
        }
        Pitfall::IntRoundTrip => {
            r#"
            int main(void) {
                int x = 5;
                long bits = (long)&x;    /* escapes into a plain integer */
                int *p = (int*)bits;     /* tag/metadata cannot follow */
                assert(*p == 5);
                return 0;
            }
            "#
        }
    }
}

/// The expected support matrix, derived from the CRuby-porting paper's
/// findings mapped onto the seven models.
pub fn expected(model: ModelKind, pitfall: Pitfall) -> Support {
    use ModelKind::*;
    use Support::*;
    match (model, pitfall) {
        // Raw bits always survive a byte copy; only metadata is lost.
        (Pdp11, _) | (Relaxed, _) => Yes,
        // Fail-open: the bound table desynchronizes and checks vanish.
        (Mpx, _) => QualifiedYes,
        // Fail-closed schemes refuse the metadata-less pointer...
        (HardBound | Strict, Pitfall::TagStripCopy) => No,
        // ...but tolerate an unmodified 64-bit integer round trip.
        (HardBound | Strict, Pitfall::IntRoundTrip) => Yes,
        // CHERI: the tag is gone either way; dereference traps.
        (CheriV2 | CheriV3, _) => No,
    }
}

/// The caveat behind each "(yes)" cell.
pub fn qualification(model: ModelKind, pitfall: Pitfall) -> Option<&'static str> {
    match expected(model, pitfall) {
        Support::QualifiedYes => Some("unchecked when the bound table desynchronizes (fails open)"),
        _ => None,
    }
}

/// Runs the canonical case for `pitfall` under `model`.
///
/// # Errors
///
/// The [`RtError`] that stopped the program, normally a model violation.
pub fn run_case(model: ModelKind, pitfall: Pitfall) -> Result<(), RtError> {
    let unit = cheri_c::parse(source(pitfall)).expect("pitfall cases always parse");
    run_main(&unit, model).map(|r| {
        assert_eq!(r.exit_code, 0, "pitfall case must exit 0 when it works");
    })
}

/// One measured cell of the pitfall matrix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PitfallCell {
    /// The model (row).
    pub model: ModelKind,
    /// The pitfall (column).
    pub pitfall: Pitfall,
    /// Whether the case ran to completion.
    pub works: bool,
    /// The failure classification when it did not.
    pub failure: Option<String>,
}

/// Runs the full 7×2 pitfall matrix (model-major order), sharing one
/// lowering per case across models as [`crate::cases::run_matrix`] does.
pub fn run_matrix() -> Vec<PitfallCell> {
    let lowered: Vec<(Pitfall, LoweredUnit)> = Pitfall::ALL
        .iter()
        .map(|&p| {
            let unit = cheri_c::parse(source(p)).expect("pitfall cases always parse");
            (p, LoweredUnit::new(&unit))
        })
        .collect();
    let row = |model: ModelKind| -> Vec<PitfallCell> {
        lowered
            .iter()
            .map(|(p, lu)| {
                let r = lu.run(model).map(|res| {
                    assert_eq!(res.exit_code, 0, "pitfall case must exit 0 when it works");
                });
                PitfallCell {
                    model,
                    pitfall: *p,
                    works: r.is_ok(),
                    failure: r.err().map(|e| e.to_string()),
                }
            })
            .collect()
    };
    let per_model = cheri_interp::fan_out_ordered(&ModelKind::ALL, |&model| row(model));
    per_model.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_matrix_matches_expected() {
        for cell in run_matrix() {
            let want = expected(cell.model, cell.pitfall).works();
            assert_eq!(
                cell.works, want,
                "pitfall mismatch at ({}, {}): measured {} expected {} ({:?})",
                cell.model, cell.pitfall, cell.works, want, cell.failure
            );
        }
    }

    #[test]
    fn cheri_refuses_both_pitfalls_with_tag_faults() {
        for model in [ModelKind::CheriV2, ModelKind::CheriV3] {
            for p in Pitfall::ALL {
                let err = run_case(model, p).expect_err("CHERI must trap");
                assert!(
                    err.to_string().contains("tag"),
                    "({model}, {p}) should be a tag fault, got: {err}"
                );
            }
        }
    }

    #[test]
    fn int_round_trip_is_the_unported_int_idiom() {
        // Same verdict as the Int column everywhere except CHERI, where
        // the intcap_t escape hatch does not apply to a plain long.
        use crate::cases::paper_expected;
        use crate::Idiom;
        for model in ModelKind::ALL {
            let int_works = paper_expected(model, Idiom::Int).works();
            let rt_works = expected(model, Pitfall::IntRoundTrip).works();
            match model {
                ModelKind::CheriV2 | ModelKind::CheriV3 => {
                    assert!(int_works && !rt_works, "{model}")
                }
                _ => assert_eq!(int_works, rt_works, "{model}"),
            }
        }
    }

    #[test]
    fn qualifications_exist_exactly_for_qualified_cells() {
        for model in ModelKind::ALL {
            for p in Pitfall::ALL {
                let q = qualification(model, p);
                assert_eq!(q.is_some(), expected(model, p) == Support::QualifiedYes);
            }
        }
    }
}
