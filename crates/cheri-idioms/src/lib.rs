//! The pointer-idiom taxonomy of §2, with everything needed to regenerate
//! Tables 1 and 3:
//!
//! * [`Idiom`] — the eight problematic idioms (Deconst, Container, Sub, II,
//!   Int, IA, Mask, Wide).
//! * [`cases`] — the "test cases demonstrating the common patterns"
//!   extracted from the corpus survey, as runnable mini-C programs, plus
//!   the paper's expected support matrix (Table 3) and
//!   [`cases::run_matrix`] to measure it on the live interpreter.
//! * [`analyzer`] — the static analyzer ("our modified LLVM identified all
//!   instances of pointer arithmetic … and performed some simple
//!   categorization") reimplemented over the typed mini-C AST.
//! * [`corpus`] — a synthetic-corpus generator seeded with the paper's
//!   per-package idiom frequencies, standing in for the 1.9 MLoC of
//!   open-source C we cannot ship.
//!
//! # Example
//!
//! ```
//! use cheri_idioms::{analyzer, Idiom};
//! let unit = cheri_c::parse(
//!     "long f(char *a, char *b) { return a - b; }"
//! ).unwrap();
//! let counts = analyzer::analyze(&unit);
//! assert_eq!(counts.get(Idiom::Sub), 1);
//! ```

pub mod analyzer;
pub mod cases;
pub mod corpus;
mod idiom;
pub mod pitfalls;

pub use idiom::{Idiom, IdiomCounts};
