//! Synthetic-corpus generation for the Table 1 reproduction.
//!
//! The paper compiled "a sample corpus of around 2M lines of popular C
//! code" — ffmpeg, libX11, FreeBSD libc, bash, libpng, tcpdump, perf, pmc,
//! pcre, python, wget, zlib, zsh — with the modified Clang and categorized
//! the hits (Table 1). We cannot ship those sources, so this module
//! synthesizes, for each package, a mini-C translation unit that *plants*
//! exactly the paper's reported number of instances of each idiom (using
//! the extracted idiom templates), padded with idiom-free filler functions.
//! Running [`crate::analyzer::analyze`] over the generated corpus must then
//! recover Table 1 exactly — which simultaneously validates the analyzer's
//! precision/recall on known ground truth and regenerates the table.
//!
//! Line counts are scaled down by [`LOC_SCALE`] (the paper's corpus is
//! 1.9 MLoC; the synthetic one keeps the *counts* exact and the *density*
//! proportional).

use crate::idiom::{Idiom, IdiomCounts};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Lines-of-code scale factor between the paper's corpus and ours.
pub const LOC_SCALE: u64 = 20;

/// One row of Table 1: a package and its idiom counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PackageSpec {
    /// Package name as printed in the paper.
    pub name: &'static str,
    /// The paper's reported lines of code.
    pub loc: u64,
    /// The paper's reported idiom counts, in [`Idiom::ALL`] order.
    pub counts: [u64; 8],
}

impl PackageSpec {
    /// The planted counts as an [`IdiomCounts`].
    pub fn idiom_counts(&self) -> IdiomCounts {
        let mut c = IdiomCounts::new();
        for (idiom, &n) in Idiom::ALL.iter().zip(&self.counts) {
            for _ in 0..n {
                c.bump(*idiom);
            }
        }
        c
    }
}

/// The paper's Table 1, verbatim:
/// `[DECONST, CONTAINER, SUB, II, INT, IA, MASK, WIDE]`.
pub fn paper_packages() -> Vec<PackageSpec> {
    vec![
        PackageSpec {
            name: "ffmpeg",
            loc: 693_010,
            counts: [150, 0, 800, 4, 0, 0, 4, 0],
        },
        PackageSpec {
            name: "libX11",
            loc: 120_386,
            counts: [117, 0, 19, 9, 1, 0, 0, 5],
        },
        PackageSpec {
            name: "FreeBSD libc",
            loc: 136_717,
            counts: [288, 0, 216, 2, 13, 50, 184, 17],
        },
        PackageSpec {
            name: "bash",
            loc: 109_250,
            counts: [43, 0, 207, 11, 0, 0, 15, 4],
        },
        PackageSpec {
            name: "libpng",
            loc: 50_071,
            counts: [20, 0, 175, 1, 0, 0, 0, 0],
        },
        PackageSpec {
            name: "tcpdump",
            loc: 66_555,
            counts: [579, 0, 9, 1299, 0, 0, 0, 0],
        },
        PackageSpec {
            name: "perf",
            loc: 52_033,
            counts: [575, 151, 46, 0, 53, 151, 31, 4],
        },
        PackageSpec {
            name: "pmc",
            loc: 8_886,
            counts: [2, 0, 0, 0, 18, 0, 0, 0],
        },
        PackageSpec {
            name: "pcre",
            loc: 70_447,
            counts: [98, 0, 52, 0, 0, 0, 0, 0],
        },
        PackageSpec {
            name: "python",
            loc: 383_813,
            counts: [494, 0, 358, 1, 109, 0, 131, 8],
        },
        PackageSpec {
            name: "wget",
            loc: 91_710,
            counts: [55, 0, 61, 0, 3, 0, 1, 10],
        },
        PackageSpec {
            name: "zlib",
            loc: 21_090,
            counts: [4, 0, 24, 0, 0, 0, 0, 0],
        },
        PackageSpec {
            name: "zsh",
            loc: 98_664,
            counts: [29, 0, 267, 0, 0, 0, 5, 5],
        },
    ]
}

/// The TOTAL row as *printed* in the paper. Note that it does not equal
/// the column sums of the paper's own per-package rows (e.g. II sums to
/// 1327 but is printed as 1557) — the paper itself says the values "are a
/// result of machine-assisted human categorization, and are intended to be
/// indicative … rather than accurate measures" (§2). We take the
/// per-package rows as ground truth and report both (see EXPERIMENTS.md).
pub const PAPER_PRINTED_TOTALS: [u64; 8] = [2491, 151, 2236, 1557, 197, 201, 371, 53];

/// Column sums of the per-package rows (the consistent totals).
pub fn paper_totals() -> [u64; 8] {
    let mut t = [0u64; 8];
    for p in paper_packages() {
        for (a, b) in t.iter_mut().zip(p.counts) {
            *a += b;
        }
    }
    t
}

/// A generated synthetic package.
#[derive(Clone, Debug)]
pub struct GeneratedPackage {
    /// The spec this was generated from.
    pub spec: PackageSpec,
    /// Mini-C source text.
    pub source: String,
    /// Actual line count of `source`.
    pub loc: u64,
}

fn idiom_template(idiom: Idiom, k: u64) -> String {
    match idiom {
        Idiom::Deconst => {
            format!("char *deconst_{k}(const char *p) {{\n    return (char*)p;\n}}\n")
        }
        Idiom::Container => format!(
            "struct box_{k} {{ int tag_{k}; int member_{k}; }};\n\
             struct box_{k} *container_{k}(int *m) {{\n    \
             return (struct box_{k}*)((char*)m - offsetof(struct box_{k}, member_{k}));\n}}\n"
        ),
        Idiom::Sub => format!("long sub_{k}(char *a, char *b) {{\n    return a - b;\n}}\n"),
        Idiom::II => format!("int ii_{k}(int *p) {{\n    return *(p + 9 - 7);\n}}\n"),
        Idiom::Int => {
            format!("long int_{k}(int *p) {{\n    long x = (long)p;\n    return x;\n}}\n")
        }
        Idiom::IA => format!("long ia_{k}(char *p) {{\n    return (long)p + 8;\n}}\n"),
        Idiom::Mask => format!("long mask_{k}(char *p) {{\n    return (long)p & ~7;\n}}\n"),
        Idiom::Wide => format!("int wide_{k}(char *p) {{\n    return (int)(long)p;\n}}\n"),
    }
}

fn filler_template(k: u64) -> String {
    format!(
        "long fill_{k}(long a, long b) {{\n    \
         long c = a * 3 + b;\n    \
         if (c > {m}) {{ c -= b; }}\n    \
         for (int i = 0; i < 4; i++) {{ c += i; }}\n    \
         return c;\n}}\n",
        m = k % 97
    )
}

/// Generates the synthetic package for `spec`, deterministic in `seed`.
pub fn generate_package(spec: &PackageSpec, seed: u64) -> GeneratedPackage {
    let mut rng = StdRng::seed_from_u64(seed ^ spec.loc);
    let mut chunks: Vec<String> = Vec::new();
    let mut k = 0u64;
    for (idiom, &n) in Idiom::ALL.iter().zip(&spec.counts) {
        for _ in 0..n {
            chunks.push(idiom_template(*idiom, k));
            k += 1;
        }
    }
    let idiom_lines: u64 = chunks.iter().map(|c| c.lines().count() as u64).sum();
    let target = spec.loc / LOC_SCALE;
    let mut fk = 0u64;
    let mut filler_lines = 0u64;
    while idiom_lines + filler_lines < target {
        let f = filler_template(fk);
        filler_lines += f.lines().count() as u64;
        chunks.push(f);
        fk += 1;
    }
    chunks.shuffle(&mut rng);
    let source = chunks.concat();
    let loc = source.lines().count() as u64;
    GeneratedPackage {
        spec: spec.clone(),
        source,
        loc,
    }
}

/// Generates the full 13-package corpus.
pub fn generate_corpus(seed: u64) -> Vec<GeneratedPackage> {
    paper_packages()
        .iter()
        .map(|p| generate_package(p, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze;

    #[test]
    fn totals_match_paper() {
        // Row sums (our ground truth) vs the paper's printed TOTAL row:
        // they differ in DECONST/SUB/II, a known inconsistency in the
        // paper's own table.
        assert_eq!(paper_totals(), [2454, 151, 2234, 1327, 197, 201, 371, 53]);
        assert_eq!(
            PAPER_PRINTED_TOTALS,
            [2491, 151, 2236, 1557, 197, 201, 371, 53]
        );
        let total: u64 = paper_packages().iter().map(|p| p.loc).sum();
        assert_eq!(total, 1_902_632);
    }

    #[test]
    fn generated_package_parses_and_counts_recover_exactly() {
        // Use the two smallest packages to keep the test fast; the full
        // corpus runs in the table1 harness and bench.
        for spec in paper_packages().iter().filter(|p| p.loc < 60_000) {
            let g = generate_package(spec, 42);
            let unit = cheri_c::parse(&g.source).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            let measured = analyze(&unit);
            assert_eq!(
                measured,
                spec.idiom_counts(),
                "analyzer must recover planted counts for {}",
                spec.name
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = &paper_packages()[7]; // pmc, small
        let a = generate_package(spec, 7);
        let b = generate_package(spec, 7);
        assert_eq!(a.source, b.source);
        let c = generate_package(spec, 8);
        assert_ne!(a.source, c.source); // different shuffle
    }

    #[test]
    fn loc_is_near_scaled_target() {
        let spec = &paper_packages()[11]; // zlib
        let g = generate_package(spec, 1);
        let target = spec.loc / LOC_SCALE;
        assert!(g.loc >= target, "padded to at least the scaled length");
        assert!(g.loc < target + target / 2 + 200);
    }

    #[test]
    fn filler_is_idiom_free() {
        let src = (0..20).map(filler_template).collect::<String>();
        let unit = cheri_c::parse(&src).unwrap();
        assert_eq!(analyze(&unit).total(), 0);
    }

    #[test]
    fn each_template_plants_exactly_one() {
        for idiom in Idiom::ALL {
            let src = idiom_template(idiom, 0);
            let unit = cheri_c::parse(&src).unwrap_or_else(|e| panic!("{idiom}: {e}"));
            let c = analyze(&unit);
            assert_eq!(c.get(idiom), 1, "{idiom} template plants one instance");
            assert_eq!(c.total(), 1, "{idiom} template plants nothing else");
        }
    }
}
