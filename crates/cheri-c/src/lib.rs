//! A mini-C frontend: lexer, parser, typed AST.
//!
//! The paper evaluates C *as programmers actually write it* — pointer
//! subtraction, `container_of`, pointer↔integer casts, masking, unions,
//! `const` removal. This crate implements a C subset rich enough to express
//! every idiom of the paper's Table 1 and all four workloads (Olden,
//! Dhrystone, tcpdump-lite, zlib-lite), while staying small enough to
//! interpret (for the Table 3 model comparison) and compile (for the
//! Figure 1–4 performance runs).
//!
//! Supported: the integer types (`char`/`short`/`int`/`long`, signed and
//! unsigned), pointers with `const` and the paper's `__capability`,
//! `__input`, `__output` qualifiers, fixed-size arrays, `struct`/`union`,
//! `sizeof`/`offsetof`, string literals, the full C expression grammar
//! (including casts, `?:`, compound assignment, `++`/`--`), and
//! `if`/`while`/`for`/`do`/`break`/`continue`/`return`. `intptr_t`,
//! `uintptr_t` and `intcap_t` are built-in types whose representation is
//! chosen by the memory model, exactly as §5.1 prescribes ("changing the
//! `intptr_t` typedef to refer to the `intcap_t` type").
//!
//! Not supported (not needed by the corpus): the preprocessor (lines
//! starting with `#` are skipped), floating point, bitfields, varargs,
//! `switch`, `goto`, and function pointers.
//!
//! # Example
//!
//! ```
//! let src = r#"
//!     int add(int a, int b) { return a + b; }
//!     int main(void) { return add(40, 2); }
//! "#;
//! let unit = cheri_c::parse(src)?;
//! assert_eq!(unit.funcs.len(), 2);
//! # Ok::<(), cheri_c::CError>(())
//! ```

mod ast;
mod lexer;
mod parser;
mod sema;

pub use ast::{
    BinOp, Block, CapQual, Expr, ExprKind, Field, FuncDef, GlobalDef, Param, Span, Stmt, StructDef,
    StructId, TranslationUnit, Type, UnOp,
};
pub use lexer::{lex, Token, TokenKind};
pub use parser::parse_tokens;
pub use sema::check;

use std::error::Error;
use std::fmt;

/// A front-end diagnostic, located by source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CError {
    /// 1-based source line.
    pub line: u32,
    /// Human-readable message.
    pub msg: String,
}

impl CError {
    pub(crate) fn new(at: impl Into<Span>, msg: impl Into<String>) -> CError {
        CError {
            line: at.into().line,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for CError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl Error for CError {}

/// Lexes, parses and type-checks a full translation unit.
///
/// # Errors
///
/// The first [`CError`] encountered at any stage.
pub fn parse(src: &str) -> Result<TranslationUnit, CError> {
    let tokens = lex(src)?;
    let mut unit = parse_tokens(&tokens)?;
    check(&mut unit)?;
    Ok(unit)
}
