//! The abstract syntax tree and the type representation.

use std::fmt;

/// Index of a struct/union definition in [`TranslationUnit::structs`].
pub type StructId = usize;

/// Capability qualifier on a pointer declarator (paper §4.1, §5).
///
/// `__capability` opts a pointer into the capability representation in the
/// hybrid ABI; `__input`/`__output` additionally drop write/read permission
/// — the hardware-enforced replacement for advisory `const`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CapQual {
    /// Plain pointer.
    #[default]
    None,
    /// `__capability`: represented as a capability.
    Capability,
    /// `__input`: capability without store permission.
    Input,
    /// `__output`: capability without load permission.
    Output,
}

/// A mini-C type.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Type {
    /// `void`.
    Void,
    /// An integer type of `width` bytes (1, 2, 4, 8).
    Int {
        /// Size in bytes.
        width: u8,
        /// Signedness.
        signed: bool,
    },
    /// `intptr_t`/`uintptr_t`: an integer wide enough to hold a pointer.
    /// Its representation is chosen by the memory model — on CHERI it *is*
    /// `intcap_t` (§5.1).
    IntPtr {
        /// Signedness.
        signed: bool,
    },
    /// `intcap_t`/`uintcap_t`: an integer carried in a capability.
    IntCap {
        /// Signedness.
        signed: bool,
    },
    /// A pointer.
    Ptr {
        /// The pointed-to type.
        pointee: Box<Type>,
        /// `true` if the pointee is `const`-qualified.
        is_const: bool,
        /// Capability qualifier.
        qual: CapQual,
    },
    /// A fixed-size array.
    Array {
        /// Element type.
        elem: Box<Type>,
        /// Element count.
        len: u64,
    },
    /// A struct or union, by definition index.
    Struct(StructId),
}

impl Type {
    /// `int`.
    pub fn int() -> Type {
        Type::Int {
            width: 4,
            signed: true,
        }
    }

    /// `long`.
    pub fn long() -> Type {
        Type::Int {
            width: 8,
            signed: true,
        }
    }

    /// `char`.
    pub fn char_() -> Type {
        Type::Int {
            width: 1,
            signed: true,
        }
    }

    /// A plain (unqualified, mutable) pointer to `t`.
    pub fn ptr_to(t: Type) -> Type {
        Type::Ptr {
            pointee: Box::new(t),
            is_const: false,
            qual: CapQual::None,
        }
    }

    /// `true` for any integer-ish type, including `intptr_t`/`intcap_t`.
    pub fn is_integer(&self) -> bool {
        matches!(
            self,
            Type::Int { .. } | Type::IntPtr { .. } | Type::IntCap { .. }
        )
    }

    /// `true` for pointer types.
    pub fn is_pointer(&self) -> bool {
        matches!(self, Type::Ptr { .. })
    }

    /// `true` for array types.
    pub fn is_array(&self) -> bool {
        matches!(self, Type::Array { .. })
    }

    /// `true` if values of this type can appear in arithmetic.
    pub fn is_arith(&self) -> bool {
        self.is_integer()
    }

    /// `true` for void.
    pub fn is_void(&self) -> bool {
        matches!(self, Type::Void)
    }

    /// Array-to-pointer decay; other types unchanged.
    pub fn decay(&self) -> Type {
        match self {
            Type::Array { elem, .. } => Type::ptr_to((**elem).clone()),
            other => other.clone(),
        }
    }

    /// The pointee of a pointer (after decay), if any.
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr { pointee, .. } => Some(pointee),
            _ => None,
        }
    }

    /// Whether loading/storing through this pointer type is a const
    /// violation (the **Deconst** idiom's concern).
    pub fn pointee_is_const(&self) -> bool {
        matches!(self, Type::Ptr { is_const: true, .. })
    }

    /// The capability qualifier, if this is a pointer.
    pub fn cap_qual(&self) -> CapQual {
        match self {
            Type::Ptr { qual, .. } => *qual,
            _ => CapQual::None,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::Int { width, signed } => {
                let base = match width {
                    1 => "char",
                    2 => "short",
                    4 => "int",
                    _ => "long",
                };
                if *signed {
                    write!(f, "{base}")
                } else {
                    write!(f, "unsigned {base}")
                }
            }
            Type::IntPtr { signed: true } => write!(f, "intptr_t"),
            Type::IntPtr { signed: false } => write!(f, "uintptr_t"),
            Type::IntCap { signed: true } => write!(f, "intcap_t"),
            Type::IntCap { signed: false } => write!(f, "uintcap_t"),
            Type::Ptr {
                pointee,
                is_const,
                qual,
            } => {
                if *is_const {
                    write!(f, "const ")?;
                }
                write!(f, "{pointee}*")?;
                match qual {
                    CapQual::None => Ok(()),
                    CapQual::Capability => write!(f, " __capability"),
                    CapQual::Input => write!(f, " __input"),
                    CapQual::Output => write!(f, " __output"),
                }
            }
            Type::Array { elem, len } => write!(f, "{elem}[{len}]"),
            Type::Struct(id) => write!(f, "struct#{id}"),
        }
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`!`).
    Not,
    /// Bitwise complement (`~`).
    BitNot,
    /// Dereference (`*`).
    Deref,
    /// Address-of (`&`).
    Addr,
}

/// Binary operators (excluding assignment and `&&`/`||` short-circuiting,
/// which are separate expression kinds only in evaluation, not syntax).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&`
    BitAnd,
    /// `^`
    BitXor,
    /// `|`
    BitOr,
    /// `&&`
    LogAnd,
    /// `||`
    LogOr,
}

impl BinOp {
    /// `true` for the comparison operators, whose result is `int`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }
}

/// A source position: 1-based line plus 1-based column. A column of `0`
/// means "unknown" (positions recorded before column tracking existed, or
/// synthesized nodes).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (0 when unknown).
    pub col: u32,
}

impl From<u32> for Span {
    fn from(line: u32) -> Span {
        Span { line, col: 0 }
    }
}

impl From<(u32, u32)> for Span {
    fn from((line, col): (u32, u32)) -> Span {
        Span { line, col }
    }
}

impl From<&crate::lexer::Token> for Span {
    fn from(t: &crate::lexer::Token) -> Span {
        Span {
            line: t.line,
            col: t.col,
        }
    }
}

/// An expression; `ty` is filled in by semantic analysis.
#[derive(Clone, Debug, PartialEq)]
pub struct Expr {
    /// The node.
    pub kind: ExprKind,
    /// The computed type (valid after [`crate::check`]).
    pub ty: Type,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (0 when unknown).
    pub col: u32,
}

impl Expr {
    /// An expression with type to-be-determined.
    pub fn new(kind: ExprKind, span: impl Into<Span>) -> Expr {
        let span = span.into();
        Expr {
            kind,
            ty: Type::Void,
            line: span.line,
            col: span.col,
        }
    }
}

/// Expression node kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// String literal.
    StrLit(String),
    /// Variable reference.
    Ident(String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Assignment; `Some(op)` for compound assignment `lhs op= rhs`.
    Assign(Option<BinOp>, Box<Expr>, Box<Expr>),
    /// `cond ? a : b`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Direct function call.
    Call(String, Vec<Expr>),
    /// `base[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// `base.field` or `base->field`.
    Member {
        /// The aggregate (or pointer to it).
        base: Box<Expr>,
        /// Field name.
        field: String,
        /// `true` for `->`.
        arrow: bool,
    },
    /// `(T)e`.
    Cast(Type, Box<Expr>),
    /// `sizeof(T)`.
    SizeofType(Type),
    /// `sizeof e`.
    SizeofExpr(Box<Expr>),
    /// `offsetof(struct S, field)`.
    Offsetof(Type, String),
    /// `++e` / `--e` / `e++` / `e--`.
    IncDec {
        /// Prefix (`true`) or postfix.
        pre: bool,
        /// Increment (`true`) or decrement.
        inc: bool,
        /// The lvalue operated on.
        target: Box<Expr>,
    },
}

/// One field of a struct or union.
#[derive(Clone, Debug, PartialEq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Type,
}

/// A struct or union definition.
#[derive(Clone, Debug, PartialEq)]
pub struct StructDef {
    /// Tag name.
    pub name: String,
    /// `true` for `union` (all fields at offset 0 — the §3.2 aliasing
    /// escape hatch).
    pub is_union: bool,
    /// Fields in declaration order.
    pub fields: Vec<Field>,
}

impl StructDef {
    /// Finds a field by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// A sequence of statements.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Block {
    /// The statements.
    pub stmts: Vec<Stmt>,
}

/// A statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// Local declaration.
    Decl {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: Type,
        /// Optional initializer.
        init: Option<Expr>,
        /// Source line.
        line: u32,
    },
    /// Expression statement.
    Expr(Expr),
    /// `if`/`else`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_branch: Block,
        /// Optional else branch.
        else_branch: Option<Block>,
    },
    /// `while`.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Block,
    },
    /// `do … while`.
    DoWhile {
        /// Body.
        body: Block,
        /// Condition.
        cond: Expr,
    },
    /// `for`.
    For {
        /// Optional init statement (decl or expression).
        init: Option<Box<Stmt>>,
        /// Optional condition.
        cond: Option<Expr>,
        /// Optional step expression.
        step: Option<Expr>,
        /// Body.
        body: Block,
    },
    /// `return`.
    Return(Option<Expr>, u32),
    /// `break`.
    Break(u32),
    /// `continue`.
    Continue(u32),
    /// A nested block.
    Block(Block),
}

/// A function parameter.
#[derive(Clone, Debug, PartialEq)]
pub struct Param {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: Type,
}

/// A function definition.
#[derive(Clone, Debug, PartialEq)]
pub struct FuncDef {
    /// Name.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Parameters.
    pub params: Vec<Param>,
    /// Body.
    pub body: Block,
    /// Source line of the definition.
    pub line: u32,
}

/// A global variable definition.
#[derive(Clone, Debug, PartialEq)]
pub struct GlobalDef {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: Type,
    /// Optional constant initializer.
    pub init: Option<Expr>,
    /// Source line.
    pub line: u32,
}

/// A parsed translation unit.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TranslationUnit {
    /// Struct and union definitions (indexed by [`StructId`]).
    pub structs: Vec<StructDef>,
    /// Global variables.
    pub globals: Vec<GlobalDef>,
    /// Functions.
    pub funcs: Vec<FuncDef>,
}

impl TranslationUnit {
    /// Looks up a struct by tag name.
    pub fn struct_by_name(&self, name: &str) -> Option<StructId> {
        self.structs.iter().position(|s| s.name == name)
    }

    /// Looks up a function by name.
    pub fn func(&self, name: &str) -> Option<&FuncDef> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Looks up a global by name.
    pub fn global(&self, name: &str) -> Option<&GlobalDef> {
        self.globals.iter().find(|g| g.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_predicates() {
        assert!(Type::int().is_integer());
        assert!(Type::IntPtr { signed: true }.is_integer());
        assert!(Type::IntCap { signed: false }.is_integer());
        assert!(Type::ptr_to(Type::int()).is_pointer());
        assert!(!Type::ptr_to(Type::int()).is_integer());
        assert!(Type::Void.is_void());
    }

    #[test]
    fn arrays_decay() {
        let a = Type::Array {
            elem: Box::new(Type::char_()),
            len: 10,
        };
        assert_eq!(a.decay(), Type::ptr_to(Type::char_()));
        assert_eq!(Type::int().decay(), Type::int());
    }

    #[test]
    fn const_pointee_is_visible() {
        let p = Type::Ptr {
            pointee: Box::new(Type::char_()),
            is_const: true,
            qual: CapQual::None,
        };
        assert!(p.pointee_is_const());
        assert!(!Type::ptr_to(Type::char_()).pointee_is_const());
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Type::int().to_string(), "int");
        assert_eq!(
            Type::Int {
                width: 1,
                signed: false
            }
            .to_string(),
            "unsigned char"
        );
        assert_eq!(Type::ptr_to(Type::int()).to_string(), "int*");
        let q = Type::Ptr {
            pointee: Box::new(Type::char_()),
            is_const: true,
            qual: CapQual::Input,
        };
        assert_eq!(q.to_string(), "const char* __input");
    }

    #[test]
    fn struct_field_lookup() {
        let s = StructDef {
            name: "pair".into(),
            is_union: false,
            fields: vec![
                Field {
                    name: "a".into(),
                    ty: Type::int(),
                },
                Field {
                    name: "b".into(),
                    ty: Type::long(),
                },
            ],
        };
        assert_eq!(s.field("b").unwrap().ty, Type::long());
        assert!(s.field("z").is_none());
    }
}
