//! The lexer.

use crate::CError;

/// A lexical token kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are distinguished by the parser).
    Ident(String),
    /// Integer literal (decimal, hex `0x`, octal `0`, or character).
    Int(i64),
    /// String literal, with escapes resolved.
    Str(String),
    /// Punctuation or operator, e.g. `"+"`, `"->"`, `"<<="`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// A token with its source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column of the token's first character.
    pub col: u32,
}

/// Multi-character operators, longest first so maximal munch works.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "...", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=",
    "-=", "*=", "/=", "%=", "&=", "|=", "^=", "+", "-", "*", "/", "%", "&", "|", "^", "~", "!",
    "<", ">", "=", "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
];

/// Tokenizes `src`. Lines beginning with `#` (preprocessor directives) are
/// skipped, so sources may carry `#include` lines for documentation.
///
/// # Errors
///
/// [`CError`] on malformed literals or stray characters.
pub fn lex(src: &str) -> Result<Vec<Token>, CError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;
    // Byte index where the current line starts; columns are 1-based offsets
    // from it.
    let mut line_start = 0usize;
    let mut at_line_start = true;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let col = (i - line_start + 1) as u32;
        match c {
            '\n' => {
                line += 1;
                line_start = i + 1;
                at_line_start = true;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '#' if at_line_start => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                    if bytes[i] == b'\n' {
                        line += 1;
                        line_start = i + 1;
                    }
                    i += 1;
                }
                if i + 1 >= bytes.len() {
                    return Err(CError::new(line, "unterminated block comment"));
                }
                i += 2;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                at_line_start = false;
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                toks.push(Token {
                    kind: TokenKind::Ident(src[start..i].to_string()),
                    line,
                    col,
                });
            }
            c if c.is_ascii_digit() => {
                at_line_start = false;
                let start = i;
                let radix = if c == '0' && i + 1 < bytes.len() && (bytes[i + 1] | 32) == b'x' {
                    i += 2;
                    16
                } else if c == '0' {
                    8
                } else {
                    10
                };
                let digits_start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_alphanumeric() {
                    i += 1;
                }
                let mut text = &src[digits_start..i];
                // Strip integer suffixes (u, l, ul, ll…).
                while text.ends_with(['u', 'U', 'l', 'L']) {
                    text = &text[..text.len() - 1];
                }
                let v = if radix == 8 {
                    let t = &src[start..][..1 + (text.len() + digits_start - start - 1)];
                    // Octal "0" alone is zero; otherwise parse the rest base 8.
                    let rest = &t[1..];
                    if rest.is_empty() {
                        0
                    } else {
                        i64::from_str_radix(rest, 8)
                            .map_err(|_| CError::new(line, format!("bad octal literal {t}")))?
                    }
                } else {
                    u64::from_str_radix(text, radix)
                        .map(|u| u as i64)
                        .map_err(|_| CError::new(line, format!("bad integer literal {text}")))?
                };
                toks.push(Token {
                    kind: TokenKind::Int(v),
                    line,
                    col,
                });
            }
            '\'' => {
                at_line_start = false;
                i += 1;
                let (ch, used) = unescape_char(bytes, i, line)?;
                i += used;
                if i >= bytes.len() || bytes[i] != b'\'' {
                    return Err(CError::new(line, "unterminated char literal"));
                }
                i += 1;
                toks.push(Token {
                    kind: TokenKind::Int(ch as i64),
                    line,
                    col,
                });
            }
            '"' => {
                at_line_start = false;
                i += 1;
                let mut s = String::new();
                while i < bytes.len() && bytes[i] != b'"' {
                    let (ch, used) = unescape_char(bytes, i, line)?;
                    s.push(ch as char);
                    i += used;
                }
                if i >= bytes.len() {
                    return Err(CError::new(line, "unterminated string literal"));
                }
                i += 1;
                toks.push(Token {
                    kind: TokenKind::Str(s),
                    line,
                    col,
                });
            }
            _ => {
                at_line_start = false;
                let rest = &src[i..];
                let p = PUNCTS
                    .iter()
                    .find(|p| rest.starts_with(**p))
                    .ok_or_else(|| CError::new(line, format!("unexpected character {c:?}")))?;
                toks.push(Token {
                    kind: TokenKind::Punct(p),
                    line,
                    col,
                });
                i += p.len();
            }
        }
    }
    toks.push(Token {
        kind: TokenKind::Eof,
        line,
        col: (bytes.len() - line_start + 1) as u32,
    });
    Ok(toks)
}

/// Decodes one possibly-escaped character at `bytes[i..]`, returning it and
/// the number of bytes consumed.
fn unescape_char(bytes: &[u8], i: usize, line: u32) -> Result<(u8, usize), CError> {
    if i >= bytes.len() {
        return Err(CError::new(line, "unexpected end of literal"));
    }
    if bytes[i] != b'\\' {
        return Ok((bytes[i], 1));
    }
    if i + 1 >= bytes.len() {
        return Err(CError::new(line, "dangling escape"));
    }
    let c = match bytes[i + 1] {
        b'n' => b'\n',
        b't' => b'\t',
        b'r' => b'\r',
        b'0' => 0,
        b'\\' => b'\\',
        b'\'' => b'\'',
        b'"' => b'"',
        other => {
            return Err(CError::new(
                line,
                format!("unknown escape \\{}", other as char),
            ))
        }
    };
    Ok((c, 2))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_and_ints() {
        assert_eq!(
            kinds("foo 42 0x2A 052"),
            vec![
                TokenKind::Ident("foo".into()),
                TokenKind::Int(42),
                TokenKind::Int(42),
                TokenKind::Int(42),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn suffixes_are_stripped() {
        assert_eq!(kinds("10UL")[0], TokenKind::Int(10));
        assert_eq!(kinds("0xFFul")[0], TokenKind::Int(255));
    }

    #[test]
    fn operators_munch_maximally() {
        assert_eq!(
            kinds("a <<= b >> c->d"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Punct("<<="),
                TokenKind::Ident("b".into()),
                TokenKind::Punct(">>"),
                TokenKind::Ident("c".into()),
                TokenKind::Punct("->"),
                TokenKind::Ident("d".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn char_and_string_escapes() {
        assert_eq!(kinds("'a'")[0], TokenKind::Int(97));
        assert_eq!(kinds(r"'\n'")[0], TokenKind::Int(10));
        assert_eq!(kinds(r#""hi\n""#)[0], TokenKind::Str("hi\n".into()));
        assert_eq!(kinds(r"'\0'")[0], TokenKind::Int(0));
    }

    #[test]
    fn comments_and_preprocessor_lines_are_skipped() {
        let src = "#include <stdio.h>\n// line comment\nint /* inline */ x;\n";
        assert_eq!(
            kinds(src),
            vec![
                TokenKind::Ident("int".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Punct(";"),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nb\n\nc").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn errors_carry_lines() {
        let e = lex("a\n$\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(lex("\"unterminated").is_err());
        assert!(lex("/* unterminated").is_err());
    }

    #[test]
    fn hash_mid_line_is_an_error() {
        assert!(lex("a # b").is_err());
    }
}
