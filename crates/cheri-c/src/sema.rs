//! Semantic analysis: scope resolution and type annotation.
//!
//! After [`check`] succeeds, every [`Expr::ty`] holds the expression's C
//! type. The checker is deliberately *layout-agnostic*: it never asks how
//! big a pointer is, because that answer belongs to the memory model
//! (PDP-11: 8 bytes; CHERI purecap: 32). `sizeof` therefore stays symbolic
//! until interpretation or code generation.
//!
//! The checker is permissive exactly where real-world C is permissive —
//! pointer↔integer round trips, const-stripping casts, arbitrary pointer
//! casts — because the whole point of the paper is that such code *exists*
//! and must be classified by the analyzer and judged by the memory models,
//! not rejected up front. It still rejects what no C compiler accepts:
//! unknown identifiers, bad member accesses, assigning to non-lvalues,
//! writing through `const` pointers *without* a cast, arity errors.

use crate::ast::*;
use crate::CError;
use std::collections::HashMap;

/// Built-in function signatures: `(return type, parameter types)`.
/// `malloc`/`free` sit below the abstract machine (paper §2); the rest are
/// the slice of libc the workloads need.
pub(crate) fn builtins() -> HashMap<&'static str, (Type, Vec<Type>)> {
    let vp = Type::ptr_to(Type::Void);
    let cvp = Type::Ptr {
        pointee: Box::new(Type::Void),
        is_const: true,
        qual: CapQual::None,
    };
    let ccp = Type::Ptr {
        pointee: Box::new(Type::char_()),
        is_const: true,
        qual: CapQual::None,
    };
    let ul = Type::Int {
        width: 8,
        signed: false,
    };
    HashMap::from([
        ("malloc", (vp.clone(), vec![ul.clone()])),
        ("free", (Type::Void, vec![vp.clone()])),
        (
            "memcpy",
            (vp.clone(), vec![vp.clone(), cvp.clone(), ul.clone()]),
        ),
        (
            "memset",
            (vp.clone(), vec![vp.clone(), Type::int(), ul.clone()]),
        ),
        ("strlen", (ul.clone(), vec![ccp.clone()])),
        ("strcmp", (Type::int(), vec![ccp.clone(), ccp.clone()])),
        ("puts", (Type::int(), vec![ccp])),
        ("putchar", (Type::int(), vec![Type::int()])),
        ("putint", (Type::Void, vec![Type::long()])),
        ("assert", (Type::Void, vec![Type::int()])),
        ("abort", (Type::Void, vec![])),
        ("clock", (Type::long(), vec![])),
    ])
}

/// Type-checks and annotates a translation unit in place.
///
/// # Errors
///
/// The first semantic error found.
pub fn check(unit: &mut TranslationUnit) -> Result<(), CError> {
    let structs = unit.structs.clone();
    let mut funcs_sig: HashMap<String, (Type, Vec<Type>)> = HashMap::new();
    for (name, sig) in builtins() {
        funcs_sig.insert(name.to_string(), sig);
    }
    for f in &unit.funcs {
        if funcs_sig
            .insert(
                f.name.clone(),
                (
                    f.ret.clone(),
                    f.params.iter().map(|p| p.ty.clone()).collect(),
                ),
            )
            .is_some()
            && unit.funcs.iter().filter(|g| g.name == f.name).count() > 1
        {
            return Err(CError::new(
                f.line,
                format!("duplicate function `{}`", f.name),
            ));
        }
    }
    let mut globals: HashMap<String, Type> = HashMap::new();
    for g in &mut unit.globals {
        infer_string_array_len(&mut g.ty, g.init.as_ref(), g.line)?;
        if globals.insert(g.name.clone(), g.ty.clone()).is_some() {
            return Err(CError::new(
                g.line,
                format!("duplicate global `{}`", g.name),
            ));
        }
    }
    // Check global initializers in a pure-global scope.
    {
        let mut ck = Checker {
            structs: &structs,
            funcs: &funcs_sig,
            globals: &globals,
            scopes: Vec::new(),
            ret: Type::Void,
            loop_depth: 0,
        };
        for g in &mut unit.globals {
            if let Some(init) = &mut g.init {
                ck.expr(init)?;
                ck.check_assignable(&g.ty, init, g.line)?;
            }
        }
    }
    for f in &mut unit.funcs {
        let mut ck = Checker {
            structs: &structs,
            funcs: &funcs_sig,
            globals: &globals,
            scopes: vec![HashMap::new()],
            ret: f.ret.clone(),
            loop_depth: 0,
        };
        for p in &f.params {
            ck.scopes[0].insert(p.name.clone(), p.ty.decay());
        }
        ck.block(&mut f.body)?;
    }
    Ok(())
}

fn infer_string_array_len(ty: &mut Type, init: Option<&Expr>, line: u32) -> Result<(), CError> {
    if let Type::Array { elem, len } = ty {
        if *len == 0 {
            if let Some(Expr {
                kind: ExprKind::StrLit(s),
                ..
            }) = init
            {
                if **elem == Type::char_() {
                    *len = s.len() as u64 + 1;
                    return Ok(());
                }
            }
            return Err(CError::new(
                line,
                "unsized array needs a string initializer",
            ));
        }
    }
    Ok(())
}

struct Checker<'a> {
    structs: &'a [StructDef],
    funcs: &'a HashMap<String, (Type, Vec<Type>)>,
    globals: &'a HashMap<String, Type>,
    scopes: Vec<HashMap<String, Type>>,
    ret: Type,
    loop_depth: u32,
}

impl<'a> Checker<'a> {
    fn lookup(&self, name: &str) -> Option<Type> {
        for scope in self.scopes.iter().rev() {
            if let Some(t) = scope.get(name) {
                return Some(t.clone());
            }
        }
        self.globals.get(name).cloned()
    }

    fn block(&mut self, b: &mut Block) -> Result<(), CError> {
        self.scopes.push(HashMap::new());
        for s in &mut b.stmts {
            self.stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn stmt(&mut self, s: &mut Stmt) -> Result<(), CError> {
        match s {
            Stmt::Decl {
                name,
                ty,
                init,
                line,
            } => {
                infer_string_array_len(ty, init.as_ref(), *line)?;
                if let Some(e) = init {
                    self.expr(e)?;
                    self.check_assignable(ty, e, *line)?;
                }
                self.scopes
                    .last_mut()
                    .expect("scope stack never empty")
                    .insert(name.clone(), ty.clone());
                Ok(())
            }
            Stmt::Expr(e) => self.expr(e).map(|_| ()),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.scalar_cond(cond)?;
                self.block(then_branch)?;
                if let Some(e) = else_branch {
                    self.block(e)?;
                }
                Ok(())
            }
            Stmt::While { cond, body } => {
                self.scalar_cond(cond)?;
                self.loop_depth += 1;
                self.block(body)?;
                self.loop_depth -= 1;
                Ok(())
            }
            Stmt::DoWhile { body, cond } => {
                self.loop_depth += 1;
                self.block(body)?;
                self.loop_depth -= 1;
                self.scalar_cond(cond)
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                if let Some(c) = cond {
                    self.scalar_cond(c)?;
                }
                if let Some(st) = step {
                    self.expr(st)?;
                }
                self.loop_depth += 1;
                self.block(body)?;
                self.loop_depth -= 1;
                self.scopes.pop();
                Ok(())
            }
            Stmt::Return(e, line) => match (e, self.ret.is_void()) {
                (None, true) => Ok(()),
                (None, false) => Err(CError::new(*line, "missing return value")),
                (Some(e), false) => {
                    self.expr(e)?;
                    let ret = self.ret.clone();
                    self.check_assignable(&ret, e, *line)
                }
                (Some(_), true) => Err(CError::new(*line, "returning a value from void function")),
            },
            Stmt::Break(line) | Stmt::Continue(line) => {
                if self.loop_depth == 0 {
                    Err(CError::new(*line, "break/continue outside a loop"))
                } else {
                    Ok(())
                }
            }
            Stmt::Block(b) => self.block(b),
        }
    }

    fn scalar_cond(&mut self, e: &mut Expr) -> Result<(), CError> {
        let t = self.expr(e)?;
        if t.decay().is_pointer() || t.is_arith() {
            Ok(())
        } else {
            Err(CError::new(
                e.line,
                format!("condition has non-scalar type {t}"),
            ))
        }
    }

    fn struct_of(&self, ty: &Type, line: u32) -> Result<&StructDef, CError> {
        match ty {
            Type::Struct(id) => Ok(&self.structs[*id]),
            other => Err(CError::new(line, format!("not a struct/union: {other}"))),
        }
    }

    fn is_lvalue(e: &Expr) -> bool {
        matches!(
            e.kind,
            ExprKind::Ident(_)
                | ExprKind::Unary(UnOp::Deref, _)
                | ExprKind::Index(..)
                | ExprKind::Member { .. }
        )
    }

    /// `true` when assigning through this lvalue violates a `const`
    /// qualifier (the guard the **Deconst** idiom casts away).
    fn is_const_lvalue(&self, e: &Expr) -> bool {
        match &e.kind {
            ExprKind::Unary(UnOp::Deref, p) => p.ty.decay().pointee_is_const(),
            ExprKind::Index(base, _) => base.ty.decay().pointee_is_const(),
            ExprKind::Member {
                base, arrow: true, ..
            } => base.ty.decay().pointee_is_const(),
            ExprKind::Member {
                base, arrow: false, ..
            } => self.is_const_lvalue(base),
            _ => false,
        }
    }

    fn check_assignable(&self, target: &Type, value: &Expr, line: u32) -> Result<(), CError> {
        let vt = value.ty.decay();
        let ok = match (target, &vt) {
            // Char arrays may be initialized from string literals.
            (Type::Array { elem, .. }, _)
                if **elem == Type::char_() && matches!(value.kind, ExprKind::StrLit(_)) =>
            {
                true
            }
            (t, v) if t.is_arith() && v.is_arith() => true,
            (Type::Ptr { .. }, Type::Ptr { .. }) => true,
            // Null-pointer constant.
            (Type::Ptr { .. }, v) if v.is_integer() => {
                matches!(value.kind, ExprKind::IntLit(0))
            }
            (Type::Struct(a), Type::Struct(b)) => a == b,
            _ => false,
        };
        if ok {
            Ok(())
        } else {
            Err(CError::new(
                line,
                format!("cannot assign value of type {vt} to {target} without a cast"),
            ))
        }
    }

    fn expr(&mut self, e: &mut Expr) -> Result<Type, CError> {
        let line = e.line;
        let ty = match &mut e.kind {
            ExprKind::IntLit(v) => {
                if *v >= i32::MIN as i64 && *v <= i32::MAX as i64 {
                    Type::int()
                } else {
                    Type::long()
                }
            }
            ExprKind::StrLit(_) => Type::ptr_to(Type::char_()),
            ExprKind::Ident(name) => self
                .lookup(name)
                .ok_or_else(|| CError::new(line, format!("unknown identifier `{name}`")))?,
            ExprKind::Unary(op, inner) => {
                let it = self.expr(inner)?;
                match op {
                    UnOp::Neg | UnOp::BitNot => {
                        if !it.is_arith() {
                            return Err(CError::new(line, format!("arithmetic on {it}")));
                        }
                        promote(&it)
                    }
                    UnOp::Not => {
                        if !(it.is_arith() || it.decay().is_pointer()) {
                            return Err(CError::new(line, format!("`!` on {it}")));
                        }
                        Type::int()
                    }
                    UnOp::Deref => {
                        let dt = it.decay();
                        dt.pointee()
                            .cloned()
                            .ok_or_else(|| CError::new(line, format!("dereference of {it}")))?
                    }
                    UnOp::Addr => {
                        if !Self::is_lvalue(inner) {
                            return Err(CError::new(line, "address of non-lvalue"));
                        }
                        Type::ptr_to(it)
                    }
                }
            }
            ExprKind::Binary(op, a, b) => {
                let ta = self.expr(a)?.decay();
                let tb = self.expr(b)?.decay();
                self.binary_type(*op, &ta, &tb, line)?
            }
            ExprKind::Assign(op, lhs, rhs) => {
                let lt = self.expr(lhs)?;
                if !Self::is_lvalue(lhs) {
                    return Err(CError::new(line, "assignment to non-lvalue"));
                }
                if self.is_const_lvalue(lhs) {
                    return Err(CError::new(line, "assignment through const pointer"));
                }
                if lt.is_array() {
                    return Err(CError::new(line, "assignment to array"));
                }
                self.expr(rhs)?;
                if let Some(op) = op {
                    let rt = rhs.ty.decay();
                    self.binary_type(*op, &lt.decay(), &rt, line)?;
                } else {
                    self.check_assignable(&lt, rhs, line)?;
                }
                lt
            }
            ExprKind::Ternary(c, a, b) => {
                self.expr(c)?;
                let ta = self.expr(a)?.decay();
                let tb = self.expr(b)?.decay();
                if ta.is_arith() && tb.is_arith() {
                    common_type(&ta, &tb)
                } else {
                    ta
                }
            }
            ExprKind::Call(name, args) => {
                let (ret, params) = self
                    .funcs
                    .get(name.as_str())
                    .cloned()
                    .ok_or_else(|| CError::new(line, format!("unknown function `{name}`")))?;
                if args.len() != params.len() {
                    return Err(CError::new(
                        line,
                        format!(
                            "`{name}` expects {} arguments, got {}",
                            params.len(),
                            args.len()
                        ),
                    ));
                }
                for (arg, pty) in args.iter_mut().zip(&params) {
                    self.expr(arg)?;
                    // Arguments follow assignment rules, with the usual C
                    // laxity for void* both ways.
                    self.check_assignable(pty, arg, line)?;
                }
                ret
            }
            ExprKind::Index(base, idx) => {
                let bt = self.expr(base)?.decay();
                let it = self.expr(idx)?;
                if !it.is_arith() {
                    return Err(CError::new(line, format!("array index of type {it}")));
                }
                bt.pointee()
                    .cloned()
                    .ok_or_else(|| CError::new(line, format!("indexing non-pointer {bt}")))?
            }
            ExprKind::Member { base, field, arrow } => {
                let bt = self.expr(base)?;
                let sty = if *arrow {
                    bt.decay()
                        .pointee()
                        .cloned()
                        .ok_or_else(|| CError::new(line, format!("`->` on non-pointer {bt}")))?
                } else {
                    bt
                };
                let sd = self.struct_of(&sty, line)?;
                sd.field(field).map(|f| f.ty.clone()).ok_or_else(|| {
                    CError::new(line, format!("no field `{field}` in `{}`", sd.name))
                })?
            }
            ExprKind::Cast(ty, inner) => {
                let it = self.expr(inner)?.decay();
                let tt = ty.clone();
                let ok = (tt.is_arith() || tt.is_pointer() || tt.is_void())
                    && (it.is_arith() || it.is_pointer() || it.is_void());
                if !ok {
                    return Err(CError::new(line, format!("invalid cast from {it} to {tt}")));
                }
                tt
            }
            ExprKind::SizeofType(_) | ExprKind::SizeofExpr(_) => {
                if let ExprKind::SizeofExpr(inner) = &mut e.kind {
                    self.expr(inner)?;
                }
                Type::Int {
                    width: 8,
                    signed: false,
                }
            }
            ExprKind::Offsetof(sty, field) => {
                let sd = self.struct_of(sty, line)?;
                if sd.field(field).is_none() {
                    return Err(CError::new(
                        line,
                        format!("no field `{field}` in `{}`", sd.name),
                    ));
                }
                Type::Int {
                    width: 8,
                    signed: false,
                }
            }
            ExprKind::IncDec { target, .. } => {
                let tt = self.expr(target)?;
                if !Self::is_lvalue(target) {
                    return Err(CError::new(line, "++/-- on non-lvalue"));
                }
                if self.is_const_lvalue(target) {
                    return Err(CError::new(line, "++/-- through const pointer"));
                }
                if !(tt.is_arith() || tt.is_pointer()) {
                    return Err(CError::new(line, format!("++/-- on {tt}")));
                }
                tt
            }
        };
        e.ty = ty.clone();
        Ok(ty)
    }

    fn binary_type(&self, op: BinOp, ta: &Type, tb: &Type, line: u32) -> Result<Type, CError> {
        use BinOp::*;
        match op {
            Add => match (ta.is_pointer(), tb.is_pointer()) {
                (true, false) if tb.is_arith() => Ok(ta.clone()),
                (false, true) if ta.is_arith() => Ok(tb.clone()),
                (false, false) if ta.is_arith() && tb.is_arith() => Ok(common_type(ta, tb)),
                _ => Err(CError::new(
                    line,
                    format!("invalid operands to +: {ta}, {tb}"),
                )),
            },
            Sub => match (ta.is_pointer(), tb.is_pointer()) {
                (true, true) => Ok(Type::long()), // ptrdiff_t
                (true, false) if tb.is_arith() => Ok(ta.clone()),
                (false, false) if ta.is_arith() && tb.is_arith() => Ok(common_type(ta, tb)),
                _ => Err(CError::new(
                    line,
                    format!("invalid operands to -: {ta}, {tb}"),
                )),
            },
            Mul | Div | Rem | Shl | Shr | BitAnd | BitXor | BitOr => {
                if ta.is_arith() && tb.is_arith() {
                    Ok(common_type(ta, tb))
                } else {
                    Err(CError::new(
                        line,
                        format!("invalid operands to {op:?}: {ta}, {tb}"),
                    ))
                }
            }
            Lt | Gt | Le | Ge | Eq | Ne => {
                let ok = (ta.is_arith() && tb.is_arith())
                    || (ta.is_pointer() && tb.is_pointer())
                    || (ta.is_pointer() && tb.is_arith())
                    || (ta.is_arith() && tb.is_pointer());
                if ok {
                    Ok(Type::int())
                } else {
                    Err(CError::new(line, format!("cannot compare {ta} and {tb}")))
                }
            }
            LogAnd | LogOr => {
                let scalar = |t: &Type| t.is_arith() || t.is_pointer();
                if scalar(ta) && scalar(tb) {
                    Ok(Type::int())
                } else {
                    Err(CError::new(
                        line,
                        format!("invalid operands to &&/||: {ta}, {tb}"),
                    ))
                }
            }
        }
    }
}

/// Integer promotion: anything narrower than `int` computes as `int`.
fn promote(t: &Type) -> Type {
    match t {
        Type::Int { width, signed } if *width < 4 => Type::Int {
            width: 4,
            signed: *signed,
        },
        other => other.clone(),
    }
}

/// Usual arithmetic conversions, extended so that capability-carried
/// integers are sticky: `intcap_t + long` stays `intcap_t` (the result may
/// still be a pointer in disguise, and the capability must travel with it —
/// paper §5.1).
fn common_type(a: &Type, b: &Type) -> Type {
    match (a, b) {
        (Type::IntCap { signed: sa }, Type::IntCap { signed: sb }) => {
            Type::IntCap { signed: *sa && *sb }
        }
        (Type::IntCap { .. }, _) => a.clone(),
        (_, Type::IntCap { .. }) => b.clone(),
        (Type::IntPtr { signed: sa }, Type::IntPtr { signed: sb }) => {
            Type::IntPtr { signed: *sa && *sb }
        }
        (Type::IntPtr { .. }, _) => a.clone(),
        (_, Type::IntPtr { .. }) => b.clone(),
        (
            Type::Int {
                width: wa,
                signed: sa,
            },
            Type::Int {
                width: wb,
                signed: sb,
            },
        ) => {
            let w = (*wa).max(*wb).max(4);
            let signed = if wa == wb {
                *sa && *sb
            } else if wa > wb {
                *sa
            } else {
                *sb
            };
            Type::Int { width: w, signed }
        }
        _ => a.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn ok(src: &str) -> TranslationUnit {
        parse(src).expect("should type-check")
    }

    fn err(src: &str) -> CError {
        parse(src).expect_err("should fail")
    }

    #[test]
    fn simple_function_checks() {
        ok("int add(int a, int b) { return a + b; }");
    }

    #[test]
    fn unknown_identifier_rejected() {
        let e = err("int f(void) { return missing; }");
        assert!(e.msg.contains("missing"));
    }

    #[test]
    fn unknown_function_rejected() {
        assert!(err("int f(void) { return g(); }").msg.contains("g"));
    }

    #[test]
    fn arity_checked() {
        assert!(err("int f(int a) { return f(1, 2); }")
            .msg
            .contains("arguments"));
    }

    #[test]
    fn pointer_arithmetic_types() {
        let u = ok("long f(int *p, int *q) { return q - p; }");
        let Stmt::Return(Some(e), _) = &u.funcs[0].body.stmts[0] else {
            panic!()
        };
        assert_eq!(e.ty, Type::long());
    }

    #[test]
    fn ptr_plus_int_is_ptr() {
        let u = ok("int *f(int *p) { return p + 3; }");
        let Stmt::Return(Some(e), _) = &u.funcs[0].body.stmts[0] else {
            panic!()
        };
        assert!(e.ty.is_pointer());
    }

    #[test]
    fn ptr_to_int_requires_cast() {
        assert!(err("long f(int *p) { long x = p; return x; }")
            .msg
            .contains("cast"));
        ok("long f(int *p) { long x = (long)p; return x; }");
    }

    #[test]
    fn int_to_ptr_requires_cast_except_null() {
        assert!(err("int *f(long x) { int *p = x; return p; }")
            .msg
            .contains("cast"));
        ok("int *f(long x) { int *p = 0; return (int*)x; }");
    }

    #[test]
    fn const_write_rejected_but_cast_allowed() {
        // The Deconst idiom: direct write rejected, cast accepted.
        let e = err("void f(const char *p) { *p = 1; }");
        assert!(e.msg.contains("const"));
        ok("void f(const char *p) { char *q = (char*)p; *q = 1; }");
    }

    #[test]
    fn member_access_types() {
        let u = ok("struct pair { int a; long b; };
             long f(struct pair *p) { return p->b + p->a; }");
        assert_eq!(u.funcs[0].ret, Type::long());
        assert!(err("struct pair { int a; };
             int f(struct pair *p) { return p->zz; }")
        .msg
        .contains("zz"));
    }

    #[test]
    fn intcap_arithmetic_is_sticky() {
        let u = ok("intcap_t f(intcap_t x) { return x + 1; }");
        let Stmt::Return(Some(e), _) = &u.funcs[0].body.stmts[0] else {
            panic!()
        };
        assert_eq!(e.ty, Type::IntCap { signed: true });
    }

    #[test]
    fn intptr_round_trip_checks() {
        ok("int *f(int *p) { intptr_t x = (intptr_t)p; x += 8; return (int*)x; }");
    }

    #[test]
    fn sizeof_is_unsigned_long() {
        let u = ok("unsigned long f(void) { return sizeof(long) + sizeof(int*); }");
        assert_eq!(
            u.funcs[0].ret,
            Type::Int {
                width: 8,
                signed: false
            }
        );
    }

    #[test]
    fn offsetof_requires_field() {
        ok("struct s { int a; long b; }; long f(void) { return offsetof(struct s, b); }");
        assert!(
            err("struct s { int a; }; long f(void) { return offsetof(struct s, q); }")
                .msg
                .contains("q")
        );
    }

    #[test]
    fn break_outside_loop_rejected() {
        assert!(err("void f(void) { break; }").msg.contains("loop"));
        ok("void f(void) { while (1) { break; } }");
    }

    #[test]
    fn return_type_mismatch() {
        assert!(err("int *f(void) { return 3; }").msg.contains("cast"));
        ok("int *f(void) { return 0; }"); // null constant is fine
    }

    #[test]
    fn void_function_return() {
        assert!(err("void f(void) { return 1; }").msg.contains("void"));
        assert!(err("int f(void) { return; }").msg.contains("missing"));
    }

    #[test]
    fn string_array_len_inferred() {
        let mut u = ok("char msg[] = \"hello\";");
        let g = u.globals.remove(0);
        assert_eq!(
            g.ty,
            Type::Array {
                elem: Box::new(Type::char_()),
                len: 6
            }
        );
    }

    #[test]
    fn builtins_are_known() {
        ok(r#"
            void f(void) {
                char *p = (char*)malloc(10);
                memset(p, 0, 10);
                memcpy(p, "hi", 3);
                putint(strlen(p));
                puts(p);
                free(p);
            }
        "#);
    }

    #[test]
    fn assignment_to_non_lvalue_rejected() {
        assert!(err("void f(int x) { x + 1 = 2; }").msg.contains("lvalue"));
    }

    #[test]
    fn incdec_on_pointer_ok() {
        ok("void f(char *p) { p++; --p; }");
    }

    #[test]
    fn union_members_check() {
        ok("union u { long l; char b[8]; };
            long f(void) { union u v; v.l = 5; return v.b[0]; }");
    }

    #[test]
    fn container_of_pattern_checks() {
        // The Container idiom expressed with offsetof, as the kernels do.
        ok(r#"
            struct outer { int tag; int inner; };
            struct outer *container(int *field) {
                return (struct outer *)((char *)field - offsetof(struct outer, inner));
            }
        "#);
    }

    #[test]
    fn mask_idiom_checks() {
        ok(r#"
            int *mask(int *p) {
                uintptr_t bits = (uintptr_t)p;
                bits = bits & ~7;
                return (int *)bits;
            }
        "#);
    }
}
