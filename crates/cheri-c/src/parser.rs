//! Recursive-descent parser.

use crate::ast::*;
use crate::lexer::{Token, TokenKind};
use crate::CError;

/// Parses a token stream into an (untyped) translation unit.
///
/// # Errors
///
/// The first syntax error, with its source line.
pub fn parse_tokens(tokens: &[Token]) -> Result<TranslationUnit, CError> {
    let mut p = Parser {
        toks: tokens,
        pos: 0,
        unit: TranslationUnit::default(),
    };
    p.translation_unit()?;
    Ok(p.unit)
}

const TYPE_KEYWORDS: &[&str] = &[
    "void",
    "char",
    "short",
    "int",
    "long",
    "unsigned",
    "signed",
    "const",
    "struct",
    "union",
    "intptr_t",
    "uintptr_t",
    "intcap_t",
    "uintcap_t",
    "size_t",
    "ptrdiff_t",
];

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
    unit: TranslationUnit,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &TokenKind {
        &self.toks[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].kind
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    /// Line and column of the current token, for expression positions.
    fn span(&self) -> Span {
        Span::from(&self.toks[self.pos])
    }

    fn bump(&mut self) -> &TokenKind {
        let k = &self.toks[self.pos].kind;
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        k
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), TokenKind::Punct(q) if *q == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), CError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(CError::new(
                self.line(),
                format!("expected `{p}`, found {:?}", self.peek()),
            ))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), TokenKind::Ident(s) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, CError> {
        let line = self.line();
        match self.bump() {
            TokenKind::Ident(s) => Ok(s.clone()),
            other => Err(CError::new(
                line,
                format!("expected identifier, found {other:?}"),
            )),
        }
    }

    fn at_type_start(&self) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if TYPE_KEYWORDS.contains(&s.as_str()))
    }

    // --- Types ---

    /// Parses a type specifier (no pointer declarators).
    fn type_specifier(&mut self) -> Result<(Type, bool), CError> {
        let mut is_const = false;
        while self.eat_kw("const") {
            is_const = true;
        }
        let line = self.line();
        let base = if self.eat_kw("void") {
            Type::Void
        } else if self.eat_kw("struct") || {
            if matches!(self.peek(), TokenKind::Ident(s) if s == "union") {
                self.pos += 1;
                return self.struct_or_union_tail(true, is_const);
            }
            false
        } {
            return self.struct_or_union_tail(false, is_const);
        } else if self.eat_kw("unsigned") {
            self.int_tail(false)
        } else if self.eat_kw("signed") {
            self.int_tail(true)
        } else if self.eat_kw("char") {
            Type::char_()
        } else if self.eat_kw("short") {
            self.eat_kw("int");
            Type::Int {
                width: 2,
                signed: true,
            }
        } else if self.eat_kw("int") {
            Type::int()
        } else if self.eat_kw("long") {
            self.eat_kw("long");
            self.eat_kw("int");
            Type::long()
        } else if self.eat_kw("intptr_t") {
            Type::IntPtr { signed: true }
        } else if self.eat_kw("uintptr_t") {
            Type::IntPtr { signed: false }
        } else if self.eat_kw("intcap_t") {
            Type::IntCap { signed: true }
        } else if self.eat_kw("uintcap_t") {
            Type::IntCap { signed: false }
        } else if self.eat_kw("size_t") {
            Type::Int {
                width: 8,
                signed: false,
            }
        } else if self.eat_kw("ptrdiff_t") {
            Type::Int {
                width: 8,
                signed: true,
            }
        } else {
            return Err(CError::new(
                line,
                format!("expected type, found {:?}", self.peek()),
            ));
        };
        while self.eat_kw("const") {
            is_const = true;
        }
        Ok((base, is_const))
    }

    fn int_tail(&mut self, signed: bool) -> Type {
        if self.eat_kw("char") {
            Type::Int { width: 1, signed }
        } else if self.eat_kw("short") {
            self.eat_kw("int");
            Type::Int { width: 2, signed }
        } else if self.eat_kw("long") {
            self.eat_kw("long");
            self.eat_kw("int");
            Type::Int { width: 8, signed }
        } else {
            self.eat_kw("int");
            Type::Int { width: 4, signed }
        }
    }

    fn struct_or_union_tail(
        &mut self,
        is_union: bool,
        is_const: bool,
    ) -> Result<(Type, bool), CError> {
        let line = self.line();
        let name = self.expect_ident()?;
        if self.eat_punct("{") {
            // Definition. Register the name first for self-references.
            if self.unit.struct_by_name(&name).is_some() {
                return Err(CError::new(
                    line,
                    format!("duplicate struct/union `{name}`"),
                ));
            }
            let id = self.unit.structs.len();
            self.unit.structs.push(StructDef {
                name: name.clone(),
                is_union,
                fields: Vec::new(),
            });
            let mut fields = Vec::new();
            while !self.eat_punct("}") {
                let (base, _) = self.type_specifier()?;
                loop {
                    let (ty, fname) = self.declarator(base.clone())?;
                    fields.push(Field { name: fname, ty });
                    if !self.eat_punct(",") {
                        break;
                    }
                }
                self.expect_punct(";")?;
            }
            self.unit.structs[id].fields = fields;
            Ok((Type::Struct(id), is_const))
        } else {
            let id = self
                .unit
                .struct_by_name(&name)
                .ok_or_else(|| CError::new(line, format!("unknown struct/union `{name}`")))?;
            Ok((Type::Struct(id), is_const))
        }
    }

    /// Parses `'*'… name ('[' N ']')?` after a type specifier, returning the
    /// final type and the declared name.
    fn declarator(&mut self, mut base: Type) -> Result<(Type, String), CError> {
        let mut pointee_const = false;
        loop {
            if self.eat_punct("*") {
                let mut qual = CapQual::None;
                let mut this_const = false;
                loop {
                    if self.eat_kw("const") {
                        this_const = true;
                    } else if self.eat_kw("__capability") {
                        qual = CapQual::Capability;
                    } else if self.eat_kw("__input") {
                        qual = CapQual::Input;
                    } else if self.eat_kw("__output") {
                        qual = CapQual::Output;
                    } else {
                        break;
                    }
                }
                base = Type::Ptr {
                    pointee: Box::new(base),
                    is_const: pointee_const,
                    qual,
                };
                pointee_const = this_const;
            } else {
                break;
            }
        }
        // `const` on the outermost pointer itself (e.g. `char * const p`) is
        // accepted and ignored: it constrains the variable, not the pointee.
        let _ = pointee_const;
        let name = self.expect_ident()?;
        let mut ty = base;
        if self.eat_punct("[") {
            let line = self.line();
            if self.eat_punct("]") {
                // Unsized array (parameter or string-initialized global).
                ty = Type::Array {
                    elem: Box::new(ty),
                    len: 0,
                };
            } else {
                let len = match self.bump() {
                    TokenKind::Int(n) if *n >= 0 => *n as u64,
                    other => {
                        return Err(CError::new(
                            line,
                            format!("expected array length, found {other:?}"),
                        ))
                    }
                };
                self.expect_punct("]")?;
                ty = Type::Array {
                    elem: Box::new(ty),
                    len,
                };
            }
        }
        Ok((ty, name))
    }

    /// The type-specifier+declarator treats the const-ness as applying to
    /// the *pointee* of the first `*`, matching `const char *p` usage.
    fn full_type(&mut self) -> Result<(Type, String), CError> {
        let (base, spec_const) = self.type_specifier()?;
        let (ty, name) = self.declarator(base)?;
        Ok((apply_spec_const(ty, spec_const), name))
    }

    /// An abstract type for casts / sizeof: specifier plus `*`s, no name.
    fn abstract_type(&mut self) -> Result<Type, CError> {
        let (base, spec_const) = self.type_specifier()?;
        let mut ty = base;
        let mut first = true;
        while self.eat_punct("*") {
            let mut qual = CapQual::None;
            loop {
                if self.eat_kw("const") {
                } else if self.eat_kw("__capability") {
                    qual = CapQual::Capability;
                } else if self.eat_kw("__input") {
                    qual = CapQual::Input;
                } else if self.eat_kw("__output") {
                    qual = CapQual::Output;
                } else {
                    break;
                }
            }
            ty = Type::Ptr {
                pointee: Box::new(ty),
                is_const: first && spec_const,
                qual,
            };
            first = false;
        }
        if first && spec_const {
            // const on a non-pointer cast type: irrelevant, drop it.
        }
        Ok(ty)
    }

    // --- Top level ---

    fn translation_unit(&mut self) -> Result<(), CError> {
        while !matches!(self.peek(), TokenKind::Eof) {
            // Bare struct/union definition?
            if matches!(self.peek(), TokenKind::Ident(s) if s == "struct" || s == "union") {
                // Lookahead: `struct Name {` is a definition statement.
                if let (TokenKind::Ident(_), TokenKind::Ident(_)) = (self.peek(), self.peek2()) {
                    let is_def = matches!(
                        self.toks.get(self.pos + 2).map(|t| &t.kind),
                        Some(TokenKind::Punct("{"))
                    );
                    if is_def {
                        let (_, _) = self.type_specifier()?;
                        self.expect_punct(";")?;
                        continue;
                    }
                }
            }
            self.global_or_function()?;
        }
        Ok(())
    }

    fn global_or_function(&mut self) -> Result<(), CError> {
        let line = self.line();
        let (ty, name) = self.full_type()?;
        if self.eat_punct("(") {
            let mut params = Vec::new();
            if !self.eat_punct(")") {
                let void_only = matches!(self.peek(), TokenKind::Ident(s) if s == "void")
                    && matches!(self.peek2(), TokenKind::Punct(")"));
                if void_only {
                    self.pos += 2; // `(void)` empty list
                } else {
                    loop {
                        let (pty, pname) = self.full_type()?;
                        params.push(Param {
                            name: pname,
                            ty: pty.decay(),
                        });
                        if !self.eat_punct(",") {
                            break;
                        }
                    }
                    self.expect_punct(")")?;
                }
            }
            if self.eat_punct(";") {
                // Forward declaration: recorded as a bodyless function only
                // if not defined later; simplest is to ignore it.
                return Ok(());
            }
            self.expect_punct("{")?;
            let body = self.block_tail()?;
            self.unit.funcs.push(FuncDef {
                name,
                ret: ty,
                params,
                body,
                line,
            });
            Ok(())
        } else {
            let init = if self.eat_punct("=") {
                Some(self.expr()?)
            } else {
                None
            };
            self.expect_punct(";")?;
            self.unit.globals.push(GlobalDef {
                name,
                ty,
                init,
                line,
            });
            Ok(())
        }
    }

    // --- Statements ---

    /// Parses statements until the matching `}` (already consumed `{`).
    fn block_tail(&mut self) -> Result<Block, CError> {
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            stmts.push(self.stmt()?);
        }
        Ok(Block { stmts })
    }

    fn block_or_single(&mut self) -> Result<Block, CError> {
        if self.eat_punct("{") {
            self.block_tail()
        } else {
            Ok(Block {
                stmts: vec![self.stmt()?],
            })
        }
    }

    fn stmt(&mut self) -> Result<Stmt, CError> {
        let line = self.line();
        if self.at_type_start() {
            let (ty, name) = self.full_type()?;
            let init = if self.eat_punct("=") {
                Some(self.expr()?)
            } else {
                None
            };
            self.expect_punct(";")?;
            return Ok(Stmt::Decl {
                name,
                ty,
                init,
                line,
            });
        }
        if self.eat_punct("{") {
            return Ok(Stmt::Block(self.block_tail()?));
        }
        if self.eat_kw("if") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then_branch = self.block_or_single()?;
            let else_branch = if self.eat_kw("else") {
                Some(self.block_or_single()?)
            } else {
                None
            };
            return Ok(Stmt::If {
                cond,
                then_branch,
                else_branch,
            });
        }
        if self.eat_kw("while") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let body = self.block_or_single()?;
            return Ok(Stmt::While { cond, body });
        }
        if self.eat_kw("do") {
            let body = self.block_or_single()?;
            if !self.eat_kw("while") {
                return Err(CError::new(self.line(), "expected `while` after `do` body"));
            }
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt::DoWhile { body, cond });
        }
        if self.eat_kw("for") {
            self.expect_punct("(")?;
            let init = if self.eat_punct(";") {
                None
            } else if self.at_type_start() {
                let (ty, name) = self.full_type()?;
                let init = if self.eat_punct("=") {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect_punct(";")?;
                Some(Box::new(Stmt::Decl {
                    name,
                    ty,
                    init,
                    line,
                }))
            } else {
                let e = self.expr()?;
                self.expect_punct(";")?;
                Some(Box::new(Stmt::Expr(e)))
            };
            let cond = if matches!(self.peek(), TokenKind::Punct(";")) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(";")?;
            let step = if matches!(self.peek(), TokenKind::Punct(")")) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(")")?;
            let body = self.block_or_single()?;
            return Ok(Stmt::For {
                init,
                cond,
                step,
                body,
            });
        }
        if self.eat_kw("return") {
            let e = if matches!(self.peek(), TokenKind::Punct(";")) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(";")?;
            return Ok(Stmt::Return(e, line));
        }
        if self.eat_kw("break") {
            self.expect_punct(";")?;
            return Ok(Stmt::Break(line));
        }
        if self.eat_kw("continue") {
            self.expect_punct(";")?;
            return Ok(Stmt::Continue(line));
        }
        let e = self.expr()?;
        self.expect_punct(";")?;
        Ok(Stmt::Expr(e))
    }

    // --- Expressions (precedence climbing) ---

    fn expr(&mut self) -> Result<Expr, CError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, CError> {
        let line = self.span();
        let lhs = self.ternary()?;
        let op = if self.eat_punct("=") {
            None
        } else if self.eat_punct("+=") {
            Some(BinOp::Add)
        } else if self.eat_punct("-=") {
            Some(BinOp::Sub)
        } else if self.eat_punct("*=") {
            Some(BinOp::Mul)
        } else if self.eat_punct("/=") {
            Some(BinOp::Div)
        } else if self.eat_punct("%=") {
            Some(BinOp::Rem)
        } else if self.eat_punct("&=") {
            Some(BinOp::BitAnd)
        } else if self.eat_punct("|=") {
            Some(BinOp::BitOr)
        } else if self.eat_punct("^=") {
            Some(BinOp::BitXor)
        } else if self.eat_punct("<<=") {
            Some(BinOp::Shl)
        } else if self.eat_punct(">>=") {
            Some(BinOp::Shr)
        } else {
            return Ok(lhs);
        };
        let rhs = self.assignment()?;
        Ok(Expr::new(
            ExprKind::Assign(op, Box::new(lhs), Box::new(rhs)),
            line,
        ))
    }

    fn ternary(&mut self) -> Result<Expr, CError> {
        let line = self.span();
        let cond = self.binary(0)?;
        if self.eat_punct("?") {
            let a = self.expr()?;
            self.expect_punct(":")?;
            let b = self.ternary()?;
            Ok(Expr::new(
                ExprKind::Ternary(Box::new(cond), Box::new(a), Box::new(b)),
                line,
            ))
        } else {
            Ok(cond)
        }
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, CError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match self.peek() {
                TokenKind::Punct("||") => (BinOp::LogOr, 1),
                TokenKind::Punct("&&") => (BinOp::LogAnd, 2),
                TokenKind::Punct("|") => (BinOp::BitOr, 3),
                TokenKind::Punct("^") => (BinOp::BitXor, 4),
                TokenKind::Punct("&") => (BinOp::BitAnd, 5),
                TokenKind::Punct("==") => (BinOp::Eq, 6),
                TokenKind::Punct("!=") => (BinOp::Ne, 6),
                TokenKind::Punct("<") => (BinOp::Lt, 7),
                TokenKind::Punct(">") => (BinOp::Gt, 7),
                TokenKind::Punct("<=") => (BinOp::Le, 7),
                TokenKind::Punct(">=") => (BinOp::Ge, 7),
                TokenKind::Punct("<<") => (BinOp::Shl, 8),
                TokenKind::Punct(">>") => (BinOp::Shr, 8),
                TokenKind::Punct("+") => (BinOp::Add, 9),
                TokenKind::Punct("-") => (BinOp::Sub, 9),
                TokenKind::Punct("*") => (BinOp::Mul, 10),
                TokenKind::Punct("/") => (BinOp::Div, 10),
                TokenKind::Punct("%") => (BinOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let line = self.span();
            self.pos += 1;
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), line);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CError> {
        let line = self.span();
        if self.eat_punct("-") {
            return Ok(Expr::new(
                ExprKind::Unary(UnOp::Neg, Box::new(self.unary()?)),
                line,
            ));
        }
        if self.eat_punct("!") {
            return Ok(Expr::new(
                ExprKind::Unary(UnOp::Not, Box::new(self.unary()?)),
                line,
            ));
        }
        if self.eat_punct("~") {
            return Ok(Expr::new(
                ExprKind::Unary(UnOp::BitNot, Box::new(self.unary()?)),
                line,
            ));
        }
        if self.eat_punct("*") {
            return Ok(Expr::new(
                ExprKind::Unary(UnOp::Deref, Box::new(self.unary()?)),
                line,
            ));
        }
        if self.eat_punct("&") {
            return Ok(Expr::new(
                ExprKind::Unary(UnOp::Addr, Box::new(self.unary()?)),
                line,
            ));
        }
        if self.eat_punct("++") {
            let t = self.unary()?;
            return Ok(Expr::new(
                ExprKind::IncDec {
                    pre: true,
                    inc: true,
                    target: Box::new(t),
                },
                line,
            ));
        }
        if self.eat_punct("--") {
            let t = self.unary()?;
            return Ok(Expr::new(
                ExprKind::IncDec {
                    pre: true,
                    inc: false,
                    target: Box::new(t),
                },
                line,
            ));
        }
        if matches!(self.peek(), TokenKind::Ident(s) if s == "sizeof") {
            self.pos += 1;
            if matches!(self.peek(), TokenKind::Punct("(")) {
                // `sizeof(type)` or `sizeof(expr)` — disambiguate by lookahead.
                let is_type = matches!(self.peek2(), TokenKind::Ident(s) if TYPE_KEYWORDS.contains(&s.as_str()));
                if is_type {
                    self.expect_punct("(")?;
                    let ty = self.abstract_type()?;
                    self.expect_punct(")")?;
                    return Ok(Expr::new(ExprKind::SizeofType(ty), line));
                }
            }
            let e = self.unary()?;
            return Ok(Expr::new(ExprKind::SizeofExpr(Box::new(e)), line));
        }
        if matches!(self.peek(), TokenKind::Ident(s) if s == "offsetof") {
            self.pos += 1;
            self.expect_punct("(")?;
            let ty = self.abstract_type()?;
            self.expect_punct(",")?;
            let field = self.expect_ident()?;
            self.expect_punct(")")?;
            return Ok(Expr::new(ExprKind::Offsetof(ty, field), line));
        }
        // Cast?
        if matches!(self.peek(), TokenKind::Punct("(")) {
            let is_type =
                matches!(self.peek2(), TokenKind::Ident(s) if TYPE_KEYWORDS.contains(&s.as_str()));
            if is_type {
                self.expect_punct("(")?;
                let ty = self.abstract_type()?;
                self.expect_punct(")")?;
                let e = self.unary()?;
                return Ok(Expr::new(ExprKind::Cast(ty, Box::new(e)), line));
            }
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, CError> {
        let mut e = self.primary()?;
        loop {
            let line = self.span();
            if self.eat_punct("[") {
                let idx = self.expr()?;
                self.expect_punct("]")?;
                e = Expr::new(ExprKind::Index(Box::new(e), Box::new(idx)), line);
            } else if self.eat_punct(".") {
                let f = self.expect_ident()?;
                e = Expr::new(
                    ExprKind::Member {
                        base: Box::new(e),
                        field: f,
                        arrow: false,
                    },
                    line,
                );
            } else if self.eat_punct("->") {
                let f = self.expect_ident()?;
                e = Expr::new(
                    ExprKind::Member {
                        base: Box::new(e),
                        field: f,
                        arrow: true,
                    },
                    line,
                );
            } else if self.eat_punct("++") {
                e = Expr::new(
                    ExprKind::IncDec {
                        pre: false,
                        inc: true,
                        target: Box::new(e),
                    },
                    line,
                );
            } else if self.eat_punct("--") {
                e = Expr::new(
                    ExprKind::IncDec {
                        pre: false,
                        inc: false,
                        target: Box::new(e),
                    },
                    line,
                );
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, CError> {
        let line = self.span();
        if self.eat_punct("(") {
            let e = self.expr()?;
            self.expect_punct(")")?;
            return Ok(e);
        }
        match self.bump().clone() {
            TokenKind::Int(v) => Ok(Expr::new(ExprKind::IntLit(v), line)),
            TokenKind::Str(s) => Ok(Expr::new(ExprKind::StrLit(s), line)),
            TokenKind::Ident(name) => {
                if self.eat_punct("(") {
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_punct(",") {
                                break;
                            }
                        }
                        self.expect_punct(")")?;
                    }
                    Ok(Expr::new(ExprKind::Call(name, args), line))
                } else {
                    Ok(Expr::new(ExprKind::Ident(name), line))
                }
            }
            other => Err(CError::new(
                line,
                format!("expected expression, found {other:?}"),
            )),
        }
    }
}

fn apply_spec_const(ty: Type, spec_const: bool) -> Type {
    if !spec_const {
        return ty;
    }
    // `const char *p`: const applies to the innermost pointee.
    match ty {
        Type::Ptr {
            pointee,
            is_const,
            qual,
        } => {
            let inner = apply_spec_const(*pointee, spec_const);
            if inner.is_pointer() {
                Type::Ptr {
                    pointee: Box::new(inner),
                    is_const,
                    qual,
                }
            } else {
                Type::Ptr {
                    pointee: Box::new(inner),
                    is_const: true,
                    qual,
                }
            }
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> TranslationUnit {
        parse_tokens(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn function_with_params() {
        let u = parse("int add(int a, int b) { return a + b; }");
        let f = &u.funcs[0];
        assert_eq!(f.name, "add");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.ret, Type::int());
    }

    #[test]
    fn struct_definition_and_use() {
        let u = parse(
            "struct node { int v; struct node *next; };
             struct node *head;",
        );
        assert_eq!(u.structs.len(), 1);
        assert_eq!(u.structs[0].fields.len(), 2);
        // Self-referential pointer resolves to the same struct id.
        assert_eq!(u.structs[0].fields[1].ty, Type::ptr_to(Type::Struct(0)));
        assert_eq!(u.globals[0].ty, Type::ptr_to(Type::Struct(0)));
    }

    #[test]
    fn union_is_flagged() {
        let u = parse("union u { int i; char c[4]; };");
        assert!(u.structs[0].is_union);
    }

    #[test]
    fn const_char_pointer() {
        let u = parse("const char *msg;");
        assert!(u.globals[0].ty.pointee_is_const());
    }

    #[test]
    fn capability_qualifiers_parse() {
        let u = parse("int * __capability p; char * __input q; char * __output r;");
        assert_eq!(u.globals[0].ty.cap_qual(), CapQual::Capability);
        assert_eq!(u.globals[1].ty.cap_qual(), CapQual::Input);
        assert_eq!(u.globals[2].ty.cap_qual(), CapQual::Output);
    }

    #[test]
    fn arrays_and_indexing() {
        let u = parse("int a[10]; int get(int i) { return a[i]; }");
        assert_eq!(
            u.globals[0].ty,
            Type::Array {
                elem: Box::new(Type::int()),
                len: 10
            }
        );
    }

    #[test]
    fn control_flow_statements() {
        let u = parse(
            "int f(int n) {
                int s = 0;
                for (int i = 0; i < n; i++) { s += i; }
                while (s > 100) { s /= 2; }
                do { s--; } while (s > 50);
                if (s == 3) return 1; else return s;
            }",
        );
        assert_eq!(u.funcs[0].body.stmts.len(), 5);
    }

    #[test]
    fn casts_and_sizeof() {
        let u = parse(
            "long f(char *p) {
                long x = (long)p;
                x += sizeof(int) + sizeof x;
                return (long)(int*)x;
            }",
        );
        assert_eq!(u.funcs.len(), 1);
    }

    #[test]
    fn offsetof_builtin() {
        let u = parse(
            "struct s { int a; long b; };
             long f(void) { return offsetof(struct s, b); }",
        );
        let f = &u.funcs[0];
        assert!(matches!(
            &f.body.stmts[0],
            Stmt::Return(Some(Expr { kind: ExprKind::Offsetof(Type::Struct(0), fld), .. }), _)
                if fld == "b"
        ));
    }

    #[test]
    fn precedence_is_c_like() {
        let u = parse("int f(void) { return 1 + 2 * 3 == 7 && 4 < 5; }");
        // ((1 + (2*3)) == 7) && (4 < 5)
        let Stmt::Return(Some(e), _) = &u.funcs[0].body.stmts[0] else {
            panic!()
        };
        assert!(matches!(&e.kind, ExprKind::Binary(BinOp::LogAnd, _, _)));
    }

    #[test]
    fn ternary_and_compound_assign() {
        parse("int f(int x) { x <<= 2; x = x > 0 ? x : -x; return x; }");
    }

    #[test]
    fn pointer_arith_and_member_access() {
        parse(
            "struct pkt { int len; char data[16]; };
             int f(struct pkt *p) { char *d = p->data; d = d + p->len - 1; return *d; }",
        );
    }

    #[test]
    fn forward_declarations_are_skipped() {
        let u = parse("int g(int x); int g(int x) { return x; }");
        assert_eq!(u.funcs.len(), 1);
    }

    #[test]
    fn errors_report_line() {
        let toks = lex("int f() {\n  return $;\n}").err();
        assert!(toks.is_some()); // `$` already fails in the lexer
        let e = parse_tokens(&lex("int f(void) {\n  int;\n}").unwrap()).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn string_literals() {
        let u = parse("char *s = \"hi\";");
        assert!(matches!(
            u.globals[0].init.as_ref().unwrap().kind,
            ExprKind::StrLit(ref s) if s == "hi"
        ));
    }

    #[test]
    fn unsized_array_global() {
        let u = parse("char buf[];");
        assert_eq!(
            u.globals[0].ty,
            Type::Array {
                elem: Box::new(Type::char_()),
                len: 0
            }
        );
    }
}
