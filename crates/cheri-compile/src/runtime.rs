//! The mini-C runtime appended to every compiled program.
//!
//! `putchar`, `putint`, `malloc`, `free`, `clock` and `abort` are
//! intrinsics lowered directly to syscalls/`break`; everything else is
//! ordinary mini-C compiled under the same ABI as the program — which is
//! why it only uses forward pointer movement (CHERIv2-compatible).

/// Runtime library source. Functions already defined by the user program
/// are omitted at compile time.
pub const RUNTIME_SOURCE: &str = r#"
void assert(int cond) {
    if (cond == 0) { abort(); }
}

void *memset(void *dst, int c, unsigned long n) {
    char *d = (char*)dst;
    unsigned long i = 0;
    while (i < n) {
        d[i] = (char)c;
        i = i + 1;
    }
    return dst;
}

unsigned long strlen(const char *s) {
    unsigned long n = 0;
    while (s[n] != 0) {
        n = n + 1;
    }
    return n;
}

int strcmp(const char *a, const char *b) {
    unsigned long i = 0;
    while (a[i] != 0) {
        if (a[i] != b[i]) { break; }
        i = i + 1;
    }
    return (int)a[i] - (int)b[i];
}

int puts(const char *s) {
    unsigned long i = 0;
    while (s[i] != 0) {
        putchar((int)s[i]);
        i = i + 1;
    }
    putchar(10);
    return 0;
}
"#;

/// Names lowered as intrinsics rather than calls.
pub(crate) const INTRINSICS: &[&str] = &[
    "putchar", "putint", "malloc", "free", "clock", "abort", "memcpy",
];

/// Names provided by [`RUNTIME_SOURCE`].
#[allow(dead_code)] // documented contract, exercised by tests
pub(crate) const RUNTIME_FUNCS: &[&str] = &["assert", "memset", "strlen", "strcmp", "puts"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_parses_cleanly() {
        // `abort` is an intrinsic, so sema must know it; it does (builtin).
        let unit = cheri_c::parse(RUNTIME_SOURCE).expect("runtime source is valid mini-C");
        for f in RUNTIME_FUNCS {
            assert!(unit.func(f).is_some(), "{f} missing from runtime");
        }
    }

    #[test]
    fn intrinsics_and_runtime_are_disjoint() {
        for i in INTRINSICS {
            assert!(!RUNTIME_FUNCS.contains(i));
        }
    }
}
