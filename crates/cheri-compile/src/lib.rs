//! Mini-C → CHERI ISA code generation, with the paper's three ABIs.
//!
//! * [`Abi::Mips`] — the conventional PDP-11-like target: pointers are
//!   64-bit integers, memory is reached through legacy loads/stores
//!   indirected by the default data capability.
//! * [`Abi::CheriV2`] — every pointer is a capability **without** an
//!   offset: `p + n` compiles to `CIncBase` (monotonic), and pointer
//!   subtraction is a **compile-time error** — the porting cost the paper
//!   measures on tcpdump (§5.2, ~1.6 kLoC of changes).
//! * [`Abi::CheriV3`] — every pointer is a fat capability: `p + n` is
//!   `CIncOffset`, subtraction works, bounds are enforced at dereference.
//!   This is the paper's "new ABI in which all pointers are implemented as
//!   capabilities, including references to on-stack objects, which are
//!   derived from a stack capability" (§5.2).
//!
//! The code generator is deliberately simple (stack frames in memory, an
//! expression register stack, no optimization): the evaluation compares
//! *memory models*, and the paper's measured effects — capability width in
//! the cache, extra capability manipulation instructions — survive any
//! reasonable codegen.
//!
//! # Example
//!
//! ```
//! use cheri_compile::{compile, Abi};
//! use cheri_vm::{Vm, VmConfig};
//!
//! let prog = compile("int main(void) { return 40 + 2; }", Abi::CheriV3).unwrap();
//! let mut vm = Vm::new(prog, VmConfig::functional());
//! assert_eq!(vm.run(10_000).unwrap().code, 42);
//! ```

mod codegen;
mod runtime;

pub use codegen::{compile, compile_unit, CompileError};
pub use runtime::RUNTIME_SOURCE;

use cheri_interp::TargetInfo;

/// The target ABI.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Abi {
    /// Conventional MIPS: integer pointers via the default data capability.
    Mips,
    /// Pure-capability CHERIv2: no offsets, no pointer subtraction.
    CheriV2,
    /// Pure-capability CHERIv3: fat capabilities with offsets.
    CheriV3,
}

impl Abi {
    /// All ABIs, in the paper's comparison order.
    pub const ALL: [Abi; 3] = [Abi::Mips, Abi::CheriV2, Abi::CheriV3];

    /// Layout parameters for this ABI.
    pub fn target(self) -> TargetInfo {
        match self {
            Abi::Mips => TargetInfo::lp64(),
            Abi::CheriV2 | Abi::CheriV3 => TargetInfo::cheri(),
        }
    }

    /// `true` for the capability ABIs.
    pub fn is_cheri(self) -> bool {
        !matches!(self, Abi::Mips)
    }

    /// Display name used by the benchmark harnesses.
    pub fn name(self) -> &'static str {
        match self {
            Abi::Mips => "MIPS",
            Abi::CheriV2 => "CHERIv2",
            Abi::CheriV3 => "CHERIv3",
        }
    }
}

impl std::fmt::Display for Abi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}
