//! The code generator.

use crate::runtime::{INTRINSICS, RUNTIME_SOURCE};
use crate::Abi;
use cheri_c::{BinOp, Block, Expr, ExprKind, FuncDef, Stmt, TranslationUnit, Type, UnOp};
use cheri_interp::{align_of, field_offset, size_of, TargetInfo};
use cheri_isa::{CmpOp, Instr, Op, Program, Symbol, A0, DDC, RA, SP, V0, ZERO};
use cheri_vm::sys;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Capability-register conventions shared with the VM runtime.
const CV0: u8 = 1; // capability return value / malloc result
const CA0: u8 = 3; // first capability argument
const CSP: u8 = 11; // stack capability

const INT_TEMPS: std::ops::Range<u8> = 8..16;
const CAP_TEMPS: std::ops::Range<u8> = 16..24;

/// A code-generation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileError {
    /// Source line.
    pub line: u32,
    /// Explanation.
    pub msg: String,
}

impl CompileError {
    fn new(line: u32, msg: impl Into<String>) -> CompileError {
        CompileError {
            line,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl Error for CompileError {}

/// Compiles `src` (plus the runtime library) for `abi`.
///
/// # Errors
///
/// Front-end errors, unsupported constructs, and — on [`Abi::CheriV2`] —
/// pointer subtraction, which that ABI cannot represent.
pub fn compile(src: &str, abi: Abi) -> Result<Program, CompileError> {
    let full = format!("{src}\n{RUNTIME_SOURCE}");
    let unit = cheri_c::parse(&full).map_err(|e| CompileError::new(e.line, e.msg))?;
    compile_unit(&unit, abi)
}

/// Compiles an already-parsed unit (which must include the runtime
/// functions it uses).
///
/// # Errors
///
/// As for [`compile`].
pub fn compile_unit(unit: &TranslationUnit, abi: Abi) -> Result<Program, CompileError> {
    let mut cg = Cg::new(unit, abi);
    cg.run()?;
    Ok(cg.finish())
}

/// An expression value held in a register.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Operand {
    Int(u8),
    Cap(u8),
}

/// A resolved storage location.
#[derive(Clone, Copy, Debug)]
enum Addr {
    /// Frame-relative (SP on MIPS, CSP on CHERI).
    Frame(i32),
    /// Absolute data-segment address.
    Global(u64, u64),
    /// Through a pointer register plus displacement.
    Mem(Operand, i32),
}

struct Loop {
    breaks: Vec<usize>,
    continues: Vec<usize>,
}

struct Cg<'u> {
    unit: &'u TranslationUnit,
    abi: Abi,
    ti: TargetInfo,
    code: Vec<Instr>,
    data: Vec<u8>,
    data_base: u64,
    globals: HashMap<String, (u64, u64)>,
    strings: HashMap<String, u64>,
    func_entry: HashMap<String, u64>,
    call_fixups: Vec<(usize, String, u32)>,
    symbols: Vec<Symbol>,
    // Per-function state.
    scopes: Vec<HashMap<String, (i32, Type)>>,
    cursor: i32,
    frame_max: i32,
    frame_patches: Vec<(usize, bool)>, // (index, is_epilogue)
    labels: Vec<Option<u64>>,
    label_fixups: Vec<(usize, usize)>,
    loops: Vec<Loop>,
    epilogue: usize,
    live: Vec<Operand>,
    int_free: Vec<u8>,
    cap_free: Vec<u8>,
}

impl<'u> Cg<'u> {
    fn new(unit: &'u TranslationUnit, abi: Abi) -> Cg<'u> {
        Cg {
            unit,
            abi,
            ti: abi.target(),
            code: Vec::new(),
            data: Vec::new(),
            data_base: cheri_vm::VmConfig::default().data_base,
            globals: HashMap::new(),
            strings: HashMap::new(),
            func_entry: HashMap::new(),
            call_fixups: Vec::new(),
            symbols: Vec::new(),
            scopes: Vec::new(),
            cursor: 0,
            frame_max: 0,
            frame_patches: Vec::new(),
            labels: Vec::new(),
            label_fixups: Vec::new(),
            loops: Vec::new(),
            epilogue: 0,
            live: Vec::new(),
            int_free: Vec::new(),
            cap_free: Vec::new(),
        }
    }

    fn emit(&mut self, i: Instr) -> usize {
        self.code.push(i);
        self.code.len() - 1
    }

    fn err<T>(&self, line: u32, msg: impl Into<String>) -> Result<T, CompileError> {
        Err(CompileError::new(line, msg))
    }

    fn tsize(&self, ty: &Type) -> u64 {
        size_of(ty, &self.unit.structs, &self.ti)
    }

    fn talign(&self, ty: &Type) -> u64 {
        align_of(ty, &self.unit.structs, &self.ti)
    }

    fn is_cap_value(&self, ty: &Type) -> bool {
        self.abi.is_cheri()
            && matches!(
                ty.decay(),
                Type::Ptr { .. } | Type::IntPtr { .. } | Type::IntCap { .. }
            )
    }

    // --- Register pool ---

    fn alloc_int(&mut self, line: u32) -> Result<Operand, CompileError> {
        match self.int_free.pop() {
            Some(r) => {
                let op = Operand::Int(r);
                self.live.push(op);
                Ok(op)
            }
            None => self.err(line, "expression too complex (integer registers exhausted)"),
        }
    }

    fn alloc_cap(&mut self, line: u32) -> Result<Operand, CompileError> {
        match self.cap_free.pop() {
            Some(r) => {
                let op = Operand::Cap(r);
                self.live.push(op);
                Ok(op)
            }
            None => self.err(
                line,
                "expression too complex (capability registers exhausted)",
            ),
        }
    }

    fn alloc_kind(&mut self, cap: bool, line: u32) -> Result<Operand, CompileError> {
        if cap {
            self.alloc_cap(line)
        } else {
            self.alloc_int(line)
        }
    }

    fn free_op(&mut self, op: Operand) {
        if let Some(pos) = self.live.iter().rposition(|&o| o == op) {
            self.live.remove(pos);
        }
        match op {
            Operand::Int(r) => self.int_free.push(r),
            Operand::Cap(r) => self.cap_free.push(r),
        }
    }

    fn reg(op: Operand) -> u8 {
        match op {
            Operand::Int(r) | Operand::Cap(r) => r,
        }
    }

    // --- Frame helpers ---

    const RA_SLOT: i32 = 0;
    fn int_spill_off(r: u8) -> i32 {
        8 + (r as i32 - 8) * 8
    }
    fn cap_spill_off(r: u8) -> i32 {
        96 + (r as i32 - 16) * 32
    }
    fn locals_start(&self) -> i32 {
        if self.abi.is_cheri() {
            352
        } else {
            96
        }
    }

    fn frame_base_reg(&self) -> u8 {
        if self.abi.is_cheri() {
            CSP
        } else {
            SP
        }
    }

    /// Emits a frame-relative scalar load/store.
    fn frame_mem(&mut self, op: Op, val_reg: u8, off: i32) {
        let base = self.frame_base_reg();
        self.emit(Instr::mem(op, val_reg, base, off));
    }

    fn alloc_slot(&mut self, size: u64, align: u64) -> i32 {
        let a = align.max(1) as i32;
        let off = (self.cursor + a - 1) / a * a;
        self.cursor = off + size.max(1) as i32;
        self.frame_max = self.frame_max.max(self.cursor);
        off
    }

    fn define_local(&mut self, name: &str, ty: &Type) -> i32 {
        let off = self.alloc_slot(self.tsize(ty), self.talign(ty).max(8));
        self.scopes
            .last_mut()
            .expect("scope")
            .insert(name.to_string(), (off, ty.clone()));
        off
    }

    fn lookup_local(&self, name: &str) -> Option<(i32, Type)> {
        for s in self.scopes.iter().rev() {
            if let Some(v) = s.get(name) {
                return Some(v.clone());
            }
        }
        None
    }

    // --- Labels ---

    fn new_label(&mut self) -> usize {
        self.labels.push(None);
        self.labels.len() - 1
    }

    fn bind(&mut self, l: usize) {
        self.labels[l] = Some(self.code.len() as u64);
    }

    fn emit_jump(&mut self, l: usize) {
        let pos = self.emit(Instr::new(Op::J, 0, 0, 0, 0));
        self.label_fixups.push((pos, l));
    }

    /// Branch to `l` when `rs == 0`.
    fn emit_branch_if_zero(&mut self, rs: u8, l: usize) {
        let pos = self.emit(Instr::new(Op::Beq, 0, rs, ZERO, 0));
        self.label_fixups.push((pos, l));
    }

    fn emit_branch_if_nonzero(&mut self, rs: u8, l: usize) {
        let pos = self.emit(Instr::new(Op::Bne, 0, rs, ZERO, 0));
        self.label_fixups.push((pos, l));
    }

    fn patch_labels(&mut self) {
        for &(pos, l) in &self.label_fixups {
            let target = self.labels[l].expect("label bound") as i32;
            self.code[pos].imm = target;
        }
        self.label_fixups.clear();
        self.labels.clear();
    }

    // --- Data segment ---

    fn data_alloc(&mut self, size: u64, align: u64) -> u64 {
        let a = align.max(1);
        while (self.data.len() as u64 + self.data_base) % a != 0 {
            self.data.push(0);
        }
        let addr = self.data_base + self.data.len() as u64;
        self.data.extend(std::iter::repeat_n(0u8, size as usize));
        addr
    }

    fn intern_string(&mut self, s: &str) -> u64 {
        if let Some(&a) = self.strings.get(s) {
            return a;
        }
        let addr = self.data_alloc(s.len() as u64 + 1, 1);
        let off = (addr - self.data_base) as usize;
        self.data[off..off + s.len()].copy_from_slice(s.as_bytes());
        self.strings.insert(s.to_string(), addr);
        addr
    }

    // --- Top-level driver ---

    fn run(&mut self) -> Result<(), CompileError> {
        self.layout_globals()?;
        // _start
        let start_pos = self.emit(Instr::new(Op::Jal, 0, 0, 0, 0));
        self.call_fixups.push((start_pos, "main".to_string(), 0));
        self.emit(Instr::r3(Op::Addu, A0, V0, ZERO));
        self.emit(Instr::syscall(sys::EXIT));
        self.symbols.push(Symbol {
            name: "_start".into(),
            value: 0,
            size: 3,
            is_func: true,
        });

        for f in &self.unit.funcs {
            self.gen_function(f)?;
        }
        // Patch calls.
        for (pos, name, line) in std::mem::take(&mut self.call_fixups) {
            let entry = *self
                .func_entry
                .get(&name)
                .ok_or_else(|| CompileError::new(line, format!("undefined function `{name}`")))?;
            self.code[pos].imm = entry as i32;
        }
        Ok(())
    }

    fn finish(self) -> Program {
        Program {
            code: self.code,
            data: self.data,
            data_base: self.data_base,
            entry: 0,
            symbols: self.symbols,
        }
    }

    fn layout_globals(&mut self) -> Result<(), CompileError> {
        for g in &self.unit.globals {
            let size = self.tsize(&g.ty).max(1);
            let align = self.talign(&g.ty).max(8);
            let addr = self.data_alloc(size, align);
            self.globals.insert(g.name.clone(), (addr, size));
            self.symbols.push(Symbol {
                name: g.name.clone(),
                value: addr,
                size,
                is_func: false,
            });
            let off = (addr - self.data_base) as usize;
            match (&g.init, &g.ty) {
                (None, _) => {}
                (
                    Some(Expr {
                        kind: ExprKind::StrLit(s),
                        ..
                    }),
                    Type::Array { .. },
                ) => {
                    self.data[off..off + s.len()].copy_from_slice(s.as_bytes());
                }
                (Some(e), ty) if ty.is_integer() => {
                    let v = const_eval(e, &self.ti, self.unit).ok_or_else(|| {
                        CompileError::new(g.line, "global initializer must be a constant")
                    })?;
                    let w = self.tsize(ty) as usize;
                    self.data[off..off + w].copy_from_slice(&v.to_le_bytes()[..w]);
                }
                (
                    Some(Expr {
                        kind: ExprKind::IntLit(0),
                        ..
                    }),
                    Type::Ptr { .. },
                ) => {}
                (Some(e), _) => {
                    return self.err(
                        e.line,
                        "unsupported global initializer (use a constant or init at runtime)",
                    )
                }
            }
        }
        Ok(())
    }

    // --- Functions ---

    fn gen_function(&mut self, f: &FuncDef) -> Result<(), CompileError> {
        let entry = self.code.len() as u64;
        self.func_entry.insert(f.name.clone(), entry);
        self.scopes = vec![HashMap::new()];
        self.cursor = self.locals_start();
        self.frame_max = self.cursor;
        self.loops.clear();
        self.live.clear();
        self.int_free = INT_TEMPS.rev().collect();
        self.cap_free = CAP_TEMPS.rev().collect();
        self.frame_patches.clear();
        self.epilogue = self.new_label();

        // Prologue: grow the frame, save RA, spill parameters.
        let grow = if self.abi.is_cheri() {
            self.emit(Instr::new(Op::CIncOffsetImm, CSP, CSP, 0, 0))
        } else {
            self.emit(Instr::i2(Op::Addiu, SP, SP, 0))
        };
        self.frame_patches.push((grow, false));
        let (ra_store, _) = self.frame_ops(8, true);
        self.frame_mem(ra_store, RA, Self::RA_SLOT);

        let mut int_args = 0u8;
        let mut cap_args = 0u8;
        for p in &f.params {
            let off = self.define_local(&p.name, &p.ty);
            if self.is_cap_value(&p.ty) {
                let base = self.frame_base_reg();
                self.emit(Instr::mem(Op::Csc, CA0 + cap_args, base, off));
                cap_args += 1;
            } else {
                let (st, _) = self.frame_ops(8, true);
                self.frame_mem(st, A0 + int_args, off);
                int_args += 1;
            }
            if int_args > 4 || cap_args > 4 {
                return self.err(f.line, "more than four arguments of one kind");
            }
        }

        self.gen_block(&f.body)?;

        // Implicit `return 0`.
        self.emit(Instr::li(V0, 0));
        self.bind(self.epilogue);
        let (ra_load, _) = self.frame_ops(8, false);
        self.frame_mem(ra_load, RA, Self::RA_SLOT);
        let shrink = if self.abi.is_cheri() {
            self.emit(Instr::new(Op::CIncOffsetImm, CSP, CSP, 0, 0))
        } else {
            self.emit(Instr::i2(Op::Addiu, SP, SP, 0))
        };
        self.frame_patches.push((shrink, true));
        self.emit(Instr::new(Op::Jr, 0, RA, 0, 0));

        // Patch frame size.
        let frame = ((self.frame_max as i64 + 31) / 32 * 32) as i32;
        for (pos, is_epi) in std::mem::take(&mut self.frame_patches) {
            self.code[pos].imm = if is_epi { frame } else { -frame };
        }
        self.patch_labels();
        self.symbols.push(Symbol {
            name: f.name.clone(),
            value: entry,
            size: self.code.len() as u64 - entry,
            is_func: true,
        });
        Ok(())
    }

    /// `(store op, load op)` helpers for frame scalar access: returns the
    /// store (or load) opcode for an 8-byte slot.
    fn frame_ops(&self, _width: u8, store: bool) -> (Op, Op) {
        if self.abi.is_cheri() {
            if store {
                (Op::Csd, Op::Cld)
            } else {
                (Op::Cld, Op::Csd)
            }
        } else if store {
            (Op::Sd, Op::Ld)
        } else {
            (Op::Ld, Op::Sd)
        }
    }

    /// `(load, store)` opcodes for a scalar of `ty`.
    fn scalar_ops(&self, ty: &Type, line: u32) -> Result<(Op, Op, u8), CompileError> {
        let cheri = self.abi.is_cheri();
        let (w, signed) = match ty {
            Type::Int { width, signed } => (*width, *signed),
            Type::IntPtr { .. } | Type::IntCap { .. } if !cheri => (8, true),
            _ => return self.err(line, format!("not a scalar type: {ty}")),
        };
        let ops = match (cheri, w, signed) {
            (false, 1, true) => (Op::Lb, Op::Sb),
            (false, 1, false) => (Op::Lbu, Op::Sb),
            (false, 2, true) => (Op::Lh, Op::Sh),
            (false, 2, false) => (Op::Lhu, Op::Sh),
            (false, 4, true) => (Op::Lw, Op::Sw),
            (false, 4, false) => (Op::Lwu, Op::Sw),
            (false, _, _) => (Op::Ld, Op::Sd),
            (true, 1, true) => (Op::Clb, Op::Csb),
            (true, 1, false) => (Op::Clbu, Op::Csb),
            (true, 2, true) => (Op::Clh, Op::Csh),
            (true, 2, false) => (Op::Clhu, Op::Csh),
            (true, 4, true) => (Op::Clw, Op::Csw),
            (true, 4, false) => (Op::Clwu, Op::Csw),
            (true, _, _) => (Op::Cld, Op::Csd),
        };
        Ok((ops.0, ops.1, w))
    }

    // --- Spill machinery around calls ---

    fn spill_all(&mut self) {
        let live = self.live.clone();
        for op in live {
            match op {
                Operand::Int(r) => {
                    let (st, _) = self.frame_ops(8, true);
                    self.frame_mem(st, r, Self::int_spill_off(r));
                }
                Operand::Cap(r) => {
                    let base = self.frame_base_reg();
                    self.emit(Instr::mem(Op::Csc, r, base, Self::cap_spill_off(r)));
                }
            }
        }
        // Reserve room for the spill area.
        self.frame_max = self.frame_max.max(self.locals_start());
    }

    fn reload(&mut self, ops: &[Operand]) {
        for &op in ops {
            match op {
                Operand::Int(r) => {
                    let (ld, _) = self.frame_ops(8, false);
                    self.frame_mem(ld, r, Self::int_spill_off(r));
                }
                Operand::Cap(r) => {
                    let base = self.frame_base_reg();
                    self.emit(Instr::mem(Op::Clc, r, base, Self::cap_spill_off(r)));
                }
            }
        }
    }

    // --- Addresses ---

    fn gen_addr(&mut self, e: &Expr) -> Result<(Addr, Type), CompileError> {
        match &e.kind {
            ExprKind::Ident(name) => {
                if let Some((off, ty)) = self.lookup_local(name) {
                    Ok((Addr::Frame(off), ty))
                } else if let Some(&(addr, size)) = self.globals.get(name) {
                    let ty = self.unit.global(name).expect("checked global").ty.clone();
                    Ok((Addr::Global(addr, size), ty))
                } else {
                    self.err(e.line, format!("unbound variable `{name}`"))
                }
            }
            ExprKind::Unary(UnOp::Deref, inner) => {
                let p = self.gen_ptr(inner)?;
                let ty = inner.ty.decay().pointee().cloned().expect("checked deref");
                Ok((Addr::Mem(p, 0), ty))
            }
            ExprKind::Index(base, idx) => {
                let elem = base.ty.decay().pointee().cloned().expect("checked index");
                let p = self.gen_ptr(base)?;
                let scaled = self.gen_scaled_index(idx, self.tsize(&elem))?;
                let q = self.ptr_add_reg(p, scaled, false, e.line)?;
                self.free_op(scaled);
                Ok((Addr::Mem(q, 0), elem))
            }
            ExprKind::Member { base, field, arrow } => {
                if *arrow {
                    let Type::Struct(id) = base.ty.decay().pointee().cloned().expect("->") else {
                        return self.err(e.line, "-> on non-struct");
                    };
                    let (off, fty) = field_offset(&self.unit.structs, id, field, &self.ti);
                    let p = self.gen_ptr(base)?;
                    Ok((Addr::Mem(p, off as i32), fty))
                } else {
                    let (addr, bty) = self.gen_addr(base)?;
                    let Type::Struct(id) = bty else {
                        return self.err(e.line, ". on non-struct");
                    };
                    let (off, fty) = field_offset(&self.unit.structs, id, field, &self.ti);
                    let moved = match addr {
                        Addr::Frame(f) => Addr::Frame(f + off as i32),
                        Addr::Global(a, s) => Addr::Global(a + off, s.saturating_sub(off)),
                        Addr::Mem(p, d) => Addr::Mem(p, d + off as i32),
                    };
                    Ok((moved, fty))
                }
            }
            _ => self.err(e.line, "expression is not an lvalue"),
        }
    }

    /// Materializes a pointer to `addr`.
    fn addr_to_ptr(
        &mut self,
        addr: Addr,
        bounded_size: Option<u64>,
        line: u32,
    ) -> Result<Operand, CompileError> {
        match addr {
            Addr::Frame(off) => {
                if self.abi.is_cheri() {
                    let c = self.alloc_cap(line)?;
                    self.emit(Instr::new(Op::CIncOffsetImm, Self::reg(c), CSP, 0, off));
                    Ok(c)
                } else {
                    let r = self.alloc_int(line)?;
                    self.emit(Instr::i2(Op::Addiu, Self::reg(r), SP, off));
                    Ok(r)
                }
            }
            Addr::Global(a, size) => {
                if self.abi.is_cheri() {
                    let tmp = self.alloc_int(line)?;
                    self.emit(Instr::li(Self::reg(tmp), a as i32));
                    let c = self.alloc_cap(line)?;
                    self.emit(Instr::cmod(Op::CFromPtr, Self::reg(c), DDC, Self::reg(tmp)));
                    if let Some(sz) = bounded_size.or(Some(size)) {
                        self.emit(Instr::li(Self::reg(tmp), sz as i32));
                        self.emit(Instr::cmod(
                            Op::CSetBounds,
                            Self::reg(c),
                            Self::reg(c),
                            Self::reg(tmp),
                        ));
                    }
                    self.free_op(tmp);
                    Ok(c)
                } else {
                    let r = self.alloc_int(line)?;
                    self.emit(Instr::li(Self::reg(r), a as i32));
                    Ok(r)
                }
            }
            Addr::Mem(p, 0) => Ok(p),
            Addr::Mem(p, d) => {
                match p {
                    Operand::Cap(c) => {
                        self.emit(Instr::new(Op::CIncOffsetImm, c, c, 0, d));
                    }
                    Operand::Int(r) => {
                        self.emit(Instr::i2(Op::Addiu, r, r, d));
                    }
                }
                Ok(p)
            }
        }
    }

    fn load_addr(&mut self, addr: Addr, ty: &Type, line: u32) -> Result<Operand, CompileError> {
        if self.is_cap_value(ty) {
            let c = self.alloc_cap(line)?;
            match addr {
                Addr::Frame(off) => {
                    self.emit(Instr::mem(Op::Clc, Self::reg(c), CSP, off));
                }
                Addr::Mem(Operand::Cap(p), d) => {
                    self.emit(Instr::mem(Op::Clc, Self::reg(c), p, d));
                }
                Addr::Global(..) => {
                    self.free_op(c);
                    let p = self.addr_to_ptr(addr, None, line)?;
                    let c2 = self.alloc_cap(line)?;
                    self.emit(Instr::mem(Op::Clc, Self::reg(c2), Self::reg(p), 0));
                    self.free_op(p);
                    return Ok(c2);
                }
                Addr::Mem(Operand::Int(_), _) => {
                    return self.err(line, "capability load through integer pointer");
                }
            }
            return Ok(c);
        }
        if matches!(ty, Type::Ptr { .. }) && !self.abi.is_cheri() {
            // MIPS pointers are plain 8-byte integers.
            return self.load_addr(addr, &Type::long(), line);
        }
        let (ld, _, _) = self.scalar_ops(ty, line)?;
        let r = self.alloc_int(line)?;
        match addr {
            Addr::Frame(off) => {
                let base = self.frame_base_reg();
                self.emit(Instr::mem(ld, Self::reg(r), base, off));
            }
            Addr::Mem(p, d) => {
                self.emit(Instr::mem(ld, Self::reg(r), Self::reg(p), d));
            }
            Addr::Global(..) => {
                self.free_op(r);
                let p = self.addr_to_ptr(addr, None, line)?;
                let r2 = self.alloc_int(line)?;
                self.emit(Instr::mem(ld, Self::reg(r2), Self::reg(p), 0));
                self.free_op(p);
                return Ok(r2);
            }
        }
        Ok(r)
    }

    fn store_addr(
        &mut self,
        addr: Addr,
        ty: &Type,
        val: Operand,
        line: u32,
    ) -> Result<(), CompileError> {
        if self.is_cap_value(ty) {
            let Operand::Cap(v) = val else {
                // Storing a null constant (integer 0) into a pointer slot.
                let c = self.alloc_cap(line)?;
                self.emit(Instr::cmod(Op::CFromPtr, Self::reg(c), DDC, Self::reg(val)));
                self.store_addr(addr, ty, c, line)?;
                self.free_op(c);
                return Ok(());
            };
            match addr {
                Addr::Frame(off) => {
                    self.emit(Instr::mem(Op::Csc, v, CSP, off));
                }
                Addr::Mem(Operand::Cap(p), d) => {
                    self.emit(Instr::mem(Op::Csc, v, p, d));
                }
                Addr::Global(..) => {
                    let p = self.addr_to_ptr(addr, None, line)?;
                    self.emit(Instr::mem(Op::Csc, v, Self::reg(p), 0));
                    self.free_op(p);
                }
                Addr::Mem(Operand::Int(_), _) => {
                    return self.err(line, "capability store through integer pointer");
                }
            }
            return Ok(());
        }
        if matches!(ty, Type::Ptr { .. }) && !self.abi.is_cheri() {
            return self.store_addr(addr, &Type::long(), val, line);
        }
        let (_, st, _) = self.scalar_ops(ty, line)?;
        match addr {
            Addr::Frame(off) => {
                let base = self.frame_base_reg();
                self.emit(Instr::mem(st, Self::reg(val), base, off));
            }
            Addr::Mem(p, d) => {
                self.emit(Instr::mem(st, Self::reg(val), Self::reg(p), d));
            }
            Addr::Global(..) => {
                let p = self.addr_to_ptr(addr, None, line)?;
                self.emit(Instr::mem(st, Self::reg(val), Self::reg(p), 0));
                self.free_op(p);
            }
        }
        Ok(())
    }

    // --- Pointer arithmetic ---

    /// Evaluates an index expression scaled by `elem_size` into an int reg.
    fn gen_scaled_index(&mut self, idx: &Expr, elem_size: u64) -> Result<Operand, CompileError> {
        let i = self.gen(idx)?;
        let i = self.coerce_int(i, idx.line)?;
        if elem_size != 1 {
            let s = self.alloc_int(idx.line)?;
            self.emit(Instr::li(Self::reg(s), elem_size as i32));
            self.emit(Instr::r3(Op::Mul, Self::reg(i), Self::reg(i), Self::reg(s)));
            self.free_op(s);
        }
        Ok(i)
    }

    /// `p + delta` (byte delta in an int register). `negate` subtracts.
    fn ptr_add_reg(
        &mut self,
        p: Operand,
        delta: Operand,
        negate: bool,
        line: u32,
    ) -> Result<Operand, CompileError> {
        match (self.abi, p) {
            (Abi::Mips, Operand::Int(pr)) => {
                let op = if negate { Op::Subu } else { Op::Addu };
                self.emit(Instr::r3(op, pr, pr, Self::reg(delta)));
                Ok(p)
            }
            (Abi::CheriV3, Operand::Cap(pc)) => {
                if negate {
                    self.emit(Instr::r3(
                        Op::Subu,
                        Self::reg(delta),
                        ZERO,
                        Self::reg(delta),
                    ));
                }
                self.emit(Instr::c_inc_offset(pc, pc, Self::reg(delta)));
                Ok(p)
            }
            (Abi::CheriV2, Operand::Cap(pc)) => {
                if negate {
                    return self.err(
                        line,
                        "CHERIv2 cannot represent pointer subtraction (CIncBase is monotonic); \
                         rewrite to track an index instead",
                    );
                }
                self.emit(Instr::cmod(Op::CIncBase, pc, pc, Self::reg(delta)));
                Ok(p)
            }
            _ => self.err(line, "pointer/ABI mismatch in pointer arithmetic"),
        }
    }

    /// Coerces a value to an integer register (pointer → address).
    fn coerce_int(&mut self, op: Operand, line: u32) -> Result<Operand, CompileError> {
        match op {
            Operand::Int(_) => Ok(op),
            Operand::Cap(c) => {
                let r = self.alloc_int(line)?;
                self.emit(Instr::new(Op::CToPtr, Self::reg(r), c, DDC, 0));
                self.free_op(op);
                Ok(r)
            }
        }
    }

    /// Truthiness of an operand into an int register (0/1).
    fn coerce_bool(&mut self, op: Operand, line: u32) -> Result<Operand, CompileError> {
        match op {
            Operand::Int(r) => {
                self.emit(Instr::r3(Op::Sltu, r, ZERO, r));
                Ok(op)
            }
            Operand::Cap(c) => {
                let r = self.alloc_int(line)?;
                self.emit(Instr::cmod(Op::CGetTag, Self::reg(r), c, 0));
                self.free_op(op);
                Ok(r)
            }
        }
    }

    // --- Expressions ---

    fn gen(&mut self, e: &Expr) -> Result<Operand, CompileError> {
        match &e.kind {
            ExprKind::IntLit(v) => {
                if *v < i32::MIN as i64 || *v > i32::MAX as i64 {
                    return self.err(e.line, "integer literal exceeds 32 bits");
                }
                let r = self.alloc_int(e.line)?;
                self.emit(Instr::li(Self::reg(r), *v as i32));
                Ok(r)
            }
            ExprKind::StrLit(s) => {
                let addr = self.intern_string(s);
                let size = s.len() as u64 + 1;
                self.addr_to_ptr(Addr::Global(addr, size), Some(size), e.line)
            }
            ExprKind::Ident(_) | ExprKind::Index(..) | ExprKind::Member { .. } => {
                if e.ty.is_array() {
                    let (addr, ty) = self.gen_addr(e)?;
                    let size = self.tsize(&ty);
                    return self.addr_to_ptr(addr, Some(size), e.line);
                }
                let (addr, ty) = self.gen_addr(e)?;
                let v = self.load_addr(addr, &ty, e.line)?;
                if let Addr::Mem(p, _) = addr {
                    if p != v {
                        self.free_op(p);
                    }
                }
                Ok(v)
            }
            ExprKind::Unary(op, inner) => self.gen_unary(*op, inner, e),
            ExprKind::Binary(op, a, b) => self.gen_binary(*op, a, b, e),
            ExprKind::Assign(op, lhs, rhs) => self.gen_assign(op.as_ref(), lhs, rhs, e.line),
            ExprKind::Ternary(c, a, b) => {
                let want_cap = self.is_cap_value(&e.ty);
                let dest = self.alloc_kind(want_cap, e.line)?;
                let else_l = self.new_label();
                let end_l = self.new_label();
                let cv = self.gen(c)?;
                let cb = self.coerce_bool(cv, c.line)?;
                self.emit_branch_if_zero(Self::reg(cb), else_l);
                self.free_op(cb);
                let av = self.gen(a)?;
                self.move_into(dest, av, a.line)?;
                self.free_op(av);
                self.emit_jump(end_l);
                self.bind(else_l);
                let bv = self.gen(b)?;
                self.move_into(dest, bv, b.line)?;
                self.free_op(bv);
                self.bind(end_l);
                Ok(dest)
            }
            ExprKind::Call(name, args) => self.gen_call(name, args, e),
            ExprKind::Cast(to, inner) => {
                let v = self.gen_maybe_array(inner)?;
                self.gen_cast(to, v, e.line)
            }
            ExprKind::SizeofType(ty) => {
                let r = self.alloc_int(e.line)?;
                self.emit(Instr::li(Self::reg(r), self.tsize(ty) as i32));
                Ok(r)
            }
            ExprKind::SizeofExpr(inner) => {
                let r = self.alloc_int(e.line)?;
                self.emit(Instr::li(Self::reg(r), self.tsize(&inner.ty) as i32));
                Ok(r)
            }
            ExprKind::Offsetof(ty, field) => {
                let Type::Struct(id) = ty else {
                    return self.err(e.line, "offsetof on non-struct");
                };
                let (off, _) = field_offset(&self.unit.structs, *id, field, &self.ti);
                let r = self.alloc_int(e.line)?;
                self.emit(Instr::li(Self::reg(r), off as i32));
                Ok(r)
            }
            ExprKind::IncDec { pre, inc, target } => {
                let (addr, ty) = self.gen_addr(target)?;
                let old = self.load_addr(addr, &ty, e.line)?;
                let step: i64 = if ty.is_pointer() {
                    self.tsize(ty.pointee().expect("ptr")) as i64
                } else {
                    1
                };
                let new = if let Operand::Cap(_) = old {
                    // Pointer increment/decrement on a capability.
                    let d = self.alloc_int(e.line)?;
                    self.emit(Instr::li(Self::reg(d), step as i32));
                    let copy = self.alloc_cap(e.line)?;
                    self.emit(Instr::cmod(Op::CMove, Self::reg(copy), Self::reg(old), 0));
                    let r = self.ptr_add_reg(copy, d, !*inc, e.line)?;
                    self.free_op(d);
                    r
                } else {
                    let r = self.alloc_int(e.line)?;
                    let delta = if *inc { step } else { -step };
                    self.emit(Instr::i2(
                        Op::Addiu,
                        Self::reg(r),
                        Self::reg(old),
                        delta as i32,
                    ));
                    r
                };
                self.store_addr(addr, &ty, new, e.line)?;
                if let Addr::Mem(p, _) = addr {
                    self.free_op(p);
                }
                if *pre {
                    self.free_op(old);
                    Ok(new)
                } else {
                    self.free_op(new);
                    Ok(old)
                }
            }
        }
    }

    fn gen_maybe_array(&mut self, e: &Expr) -> Result<Operand, CompileError> {
        if e.ty.is_array() {
            let (addr, ty) = self.gen_addr(e)?;
            let size = self.tsize(&ty);
            self.addr_to_ptr(addr, Some(size), e.line)
        } else {
            self.gen(e)
        }
    }

    fn move_into(&mut self, dest: Operand, src: Operand, line: u32) -> Result<(), CompileError> {
        match (dest, src) {
            (Operand::Int(d), Operand::Int(s)) => {
                self.emit(Instr::r3(Op::Addu, d, s, ZERO));
                Ok(())
            }
            (Operand::Cap(d), Operand::Cap(s)) => {
                self.emit(Instr::cmod(Op::CMove, d, s, 0));
                Ok(())
            }
            (Operand::Cap(d), Operand::Int(s)) => {
                self.emit(Instr::cmod(Op::CFromPtr, d, DDC, s));
                Ok(())
            }
            (Operand::Int(d), Operand::Cap(s)) => {
                self.emit(Instr::new(Op::CToPtr, d, s, DDC, 0));
                Ok(())
            }
        }
        .map(|()| {
            let _ = line;
        })
    }

    fn gen_unary(&mut self, op: UnOp, inner: &Expr, e: &Expr) -> Result<Operand, CompileError> {
        match op {
            UnOp::Deref => {
                if e.ty.is_array() {
                    return self.gen_maybe_array(e);
                }
                let (addr, ty) = self.gen_addr(e)?;
                let v = self.load_addr(addr, &ty, e.line)?;
                if let Addr::Mem(p, _) = addr {
                    if p != v {
                        self.free_op(p);
                    }
                }
                Ok(v)
            }
            UnOp::Addr => {
                let (addr, ty) = self.gen_addr(inner)?;
                let size = self.tsize(&ty);
                self.addr_to_ptr(addr, Some(size), e.line)
            }
            UnOp::Not => {
                let v = self.gen(inner)?;
                let b = self.coerce_bool(v, e.line)?;
                self.emit(Instr::i2(Op::Xori, Self::reg(b), Self::reg(b), 1));
                Ok(b)
            }
            UnOp::Neg => {
                let v = self.gen(inner)?;
                let v = self.coerce_int(v, e.line)?;
                self.emit(Instr::r3(Op::Subu, Self::reg(v), ZERO, Self::reg(v)));
                Ok(v)
            }
            UnOp::BitNot => {
                let v = self.gen(inner)?;
                let v = self.coerce_int(v, e.line)?;
                self.emit(Instr::r3(Op::Nor, Self::reg(v), Self::reg(v), ZERO));
                Ok(v)
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn gen_binary(
        &mut self,
        op: BinOp,
        a: &Expr,
        b: &Expr,
        e: &Expr,
    ) -> Result<Operand, CompileError> {
        // Short-circuit logical operators.
        if matches!(op, BinOp::LogAnd | BinOp::LogOr) {
            let result = self.alloc_int(e.line)?;
            let short_l = self.new_label();
            let end_l = self.new_label();
            let va = self.gen(a)?;
            let ba = self.coerce_bool(va, a.line)?;
            self.emit(Instr::r3(Op::Addu, Self::reg(result), Self::reg(ba), ZERO));
            if op == BinOp::LogAnd {
                self.emit_branch_if_zero(Self::reg(ba), short_l);
            } else {
                self.emit_branch_if_nonzero(Self::reg(ba), short_l);
            }
            self.free_op(ba);
            let vb = self.gen(b)?;
            let bb = self.coerce_bool(vb, b.line)?;
            self.emit(Instr::r3(Op::Addu, Self::reg(result), Self::reg(bb), ZERO));
            self.free_op(bb);
            self.emit_jump(end_l);
            self.bind(short_l);
            self.bind(end_l);
            return Ok(result);
        }

        let ta = a.ty.decay();
        let tb = b.ty.decay();
        let a_ptr = ta.is_pointer();
        let b_ptr = tb.is_pointer();

        // Pointer - pointer.
        if op == BinOp::Sub && a_ptr && b_ptr {
            if self.abi == Abi::CheriV2 {
                return self.err(e.line, "CHERIv2 does not support pointer subtraction");
            }
            let pa = self.gen_ptr(a)?;
            let pb = self.gen_ptr(b)?;
            let ia = self.coerce_int(pa, e.line)?;
            let ib = self.coerce_int(pb, e.line)?;
            self.emit(Instr::r3(
                Op::Subu,
                Self::reg(ia),
                Self::reg(ia),
                Self::reg(ib),
            ));
            self.free_op(ib);
            let es = self.tsize(ta.pointee().expect("ptr")).max(1);
            if es > 1 {
                let s = self.alloc_int(e.line)?;
                self.emit(Instr::li(Self::reg(s), es as i32));
                self.emit(Instr::r3(
                    Op::Div,
                    Self::reg(ia),
                    Self::reg(ia),
                    Self::reg(s),
                ));
                self.free_op(s);
            }
            return Ok(ia);
        }

        // Pointer ± integer.
        if (op == BinOp::Add || op == BinOp::Sub) && (a_ptr || b_ptr) {
            let (pe, ie, negate) = if a_ptr {
                (a, b, op == BinOp::Sub)
            } else {
                (b, a, false)
            };
            if negate && self.abi == Abi::CheriV2 {
                return self.err(
                    e.line,
                    "CHERIv2 cannot represent pointer subtraction (CIncBase is monotonic); \
                     rewrite to track an index instead",
                );
            }
            let elem = pe.ty.decay().pointee().cloned().expect("ptr");
            let p = self.gen_ptr(pe)?;
            let d = self.gen_scaled_index(ie, self.tsize(&elem))?;
            let q = self.ptr_add_reg(p, d, negate, e.line)?;
            self.free_op(d);
            return Ok(q);
        }

        // Pointer comparisons.
        if op.is_comparison() && (a_ptr || b_ptr) {
            let pa = self.gen_maybe_array(a)?;
            let pb = self.gen_maybe_array(b)?;
            return self.gen_compare(op, pa, pb, false, e.line);
        }

        // Integer (or intcap) arithmetic.
        let va = self.gen(a)?;
        let vb = self.gen(b)?;
        let signed = int_signedness(&ta) && int_signedness(&tb);
        if op.is_comparison() {
            return self.gen_compare(op, va, vb, signed, e.line);
        }
        let ia = self.coerce_int(va, e.line)?;
        let ib = self.coerce_int(vb, e.line)?;
        let (ra, rb) = (Self::reg(ia), Self::reg(ib));
        let alu = match op {
            BinOp::Add => Op::Addu,
            BinOp::Sub => Op::Subu,
            BinOp::Mul => Op::Mul,
            BinOp::Div => {
                if signed {
                    Op::Div
                } else {
                    Op::Divu
                }
            }
            BinOp::Rem => {
                if signed {
                    Op::Rem
                } else {
                    Op::Remu
                }
            }
            BinOp::Shl => Op::Sllv,
            BinOp::Shr => {
                if signed {
                    Op::Srav
                } else {
                    Op::Srlv
                }
            }
            BinOp::BitAnd => Op::And,
            BinOp::BitOr => Op::Or,
            BinOp::BitXor => Op::Xor,
            _ => unreachable!("handled above"),
        };
        self.emit(Instr::r3(alu, ra, ra, rb));
        self.free_op(ib);
        // Narrow unsigned arithmetic wraps at the type width.
        if let Type::Int {
            width,
            signed: false,
        } = e.ty
        {
            if width < 8 {
                let sh = (8 - width) * 8;
                self.emit(Instr::i2(Op::Sll, ra, ra, sh as i32));
                self.emit(Instr::i2(Op::Srl, ra, ra, sh as i32));
            }
        }
        Ok(ia)
    }

    fn gen_compare(
        &mut self,
        op: BinOp,
        va: Operand,
        vb: Operand,
        signed: bool,
        line: u32,
    ) -> Result<Operand, CompileError> {
        if let (Operand::Cap(ca), Operand::Cap(cb)) = (va, vb) {
            let sel = match op {
                BinOp::Eq => CmpOp::Eq,
                BinOp::Ne => CmpOp::Ne,
                BinOp::Lt => CmpOp::Ltu,
                BinOp::Le => CmpOp::Leu,
                BinOp::Gt => CmpOp::Ltu,
                BinOp::Ge => CmpOp::Leu,
                _ => unreachable!(),
            };
            let r = self.alloc_int(line)?;
            let (x, y) = if matches!(op, BinOp::Gt | BinOp::Ge) {
                (cb, ca)
            } else {
                (ca, cb)
            };
            self.emit(Instr::c_ptr_cmp(Self::reg(r), x, y, sel));
            self.free_op(va);
            self.free_op(vb);
            return Ok(r);
        }
        let ia = self.coerce_int(va, line)?;
        let ib = self.coerce_int(vb, line)?;
        let (ra, rb) = (Self::reg(ia), Self::reg(ib));
        let slt = if signed { Op::Slt } else { Op::Sltu };
        match op {
            BinOp::Eq => {
                self.emit(Instr::r3(Op::Xor, ra, ra, rb));
                self.emit(Instr::i2(Op::Sltiu, ra, ra, 1));
            }
            BinOp::Ne => {
                self.emit(Instr::r3(Op::Xor, ra, ra, rb));
                self.emit(Instr::r3(Op::Sltu, ra, ZERO, ra));
            }
            BinOp::Lt => {
                self.emit(Instr::r3(slt, ra, ra, rb));
            }
            BinOp::Gt => {
                self.emit(Instr::r3(slt, ra, rb, ra));
            }
            BinOp::Le => {
                self.emit(Instr::r3(slt, ra, rb, ra));
                self.emit(Instr::i2(Op::Xori, ra, ra, 1));
            }
            BinOp::Ge => {
                self.emit(Instr::r3(slt, ra, ra, rb));
                self.emit(Instr::i2(Op::Xori, ra, ra, 1));
            }
            _ => unreachable!(),
        }
        self.free_op(ib);
        Ok(ia)
    }

    fn gen_assign(
        &mut self,
        op: Option<&BinOp>,
        lhs: &Expr,
        rhs: &Expr,
        line: u32,
    ) -> Result<Operand, CompileError> {
        let (addr, ty) = self.gen_addr(lhs)?;
        if matches!(ty, Type::Struct(_) | Type::Array { .. }) {
            return self.err(line, "aggregate assignment: use memcpy");
        }
        let val = if let Some(op) = op {
            // Compound assignment: synthesize `lhs op rhs` with the loaded
            // current value.
            let cur = self.load_addr(addr, &ty, line)?;
            let rv = self.gen(rhs)?;
            self.combine_compound(*op, cur, rv, &ty, rhs, line)?
        } else {
            self.gen_maybe_array(rhs)?
        };
        // Coerce for the destination kind.
        let val = self.coerce_for_store(val, &ty, line)?;
        self.store_addr(addr, &ty, val, line)?;
        if let Addr::Mem(p, _) = addr {
            if p != val {
                self.free_op(p);
            }
        }
        Ok(val)
    }

    fn combine_compound(
        &mut self,
        op: BinOp,
        cur: Operand,
        rv: Operand,
        ty: &Type,
        rhs: &Expr,
        line: u32,
    ) -> Result<Operand, CompileError> {
        if ty.is_pointer() {
            // p += n / p -= n.
            let negate = op == BinOp::Sub;
            if negate && self.abi == Abi::CheriV2 {
                return self.err(line, "CHERIv2 cannot represent pointer subtraction");
            }
            let elem = ty.pointee().cloned().expect("ptr");
            let rv = self.coerce_int(rv, line)?;
            let es = self.tsize(&elem);
            if es != 1 {
                let s = self.alloc_int(line)?;
                self.emit(Instr::li(Self::reg(s), es as i32));
                self.emit(Instr::r3(
                    Op::Mul,
                    Self::reg(rv),
                    Self::reg(rv),
                    Self::reg(s),
                ));
                self.free_op(s);
            }
            let q = self.ptr_add_reg(cur, rv, negate, line)?;
            self.free_op(rv);
            return Ok(q);
        }
        let signed = int_signedness(ty);
        let ia = self.coerce_int(cur, line)?;
        let ib = self.coerce_int(rv, line)?;
        let alu = match op {
            BinOp::Add => Op::Addu,
            BinOp::Sub => Op::Subu,
            BinOp::Mul => Op::Mul,
            BinOp::Div => {
                if signed {
                    Op::Div
                } else {
                    Op::Divu
                }
            }
            BinOp::Rem => {
                if signed {
                    Op::Rem
                } else {
                    Op::Remu
                }
            }
            BinOp::Shl => Op::Sllv,
            BinOp::Shr => {
                if signed {
                    Op::Srav
                } else {
                    Op::Srlv
                }
            }
            BinOp::BitAnd => Op::And,
            BinOp::BitOr => Op::Or,
            BinOp::BitXor => Op::Xor,
            other => return self.err(rhs.line, format!("unsupported compound op {other:?}")),
        };
        self.emit(Instr::r3(alu, Self::reg(ia), Self::reg(ia), Self::reg(ib)));
        self.free_op(ib);
        Ok(ia)
    }

    fn coerce_for_store(
        &mut self,
        val: Operand,
        ty: &Type,
        line: u32,
    ) -> Result<Operand, CompileError> {
        if self.is_cap_value(ty) {
            return match val {
                Operand::Cap(_) => Ok(val),
                Operand::Int(_) => {
                    let c = self.alloc_cap(line)?;
                    self.emit(Instr::cmod(Op::CFromPtr, Self::reg(c), DDC, Self::reg(val)));
                    self.free_op(val);
                    Ok(c)
                }
            };
        }
        match val {
            Operand::Int(_) => Ok(val),
            Operand::Cap(_) => self.coerce_int(val, line),
        }
    }

    fn gen_cast(&mut self, to: &Type, v: Operand, line: u32) -> Result<Operand, CompileError> {
        match to {
            Type::Void => Ok(v),
            Type::Int { width, signed } => {
                let r = self.coerce_int(v, line)?;
                if *width < 8 {
                    let sh = ((8 - width) * 8) as i32;
                    self.emit(Instr::i2(Op::Sll, Self::reg(r), Self::reg(r), sh));
                    let back = if *signed { Op::Sra } else { Op::Srl };
                    self.emit(Instr::i2(back, Self::reg(r), Self::reg(r), sh));
                }
                Ok(r)
            }
            Type::Ptr { .. } | Type::IntPtr { .. } | Type::IntCap { .. } => {
                if self.abi.is_cheri() {
                    match v {
                        Operand::Cap(_) => Ok(v),
                        Operand::Int(_) => {
                            let c = self.alloc_cap(line)?;
                            self.emit(Instr::cmod(Op::CFromPtr, Self::reg(c), DDC, Self::reg(v)));
                            self.free_op(v);
                            Ok(c)
                        }
                    }
                } else {
                    self.coerce_int(v, line)
                }
            }
            _ => self.err(line, format!("unsupported cast target {to}")),
        }
    }

    fn gen_ptr(&mut self, e: &Expr) -> Result<Operand, CompileError> {
        let v = self.gen_maybe_array(e)?;
        if self.abi.is_cheri() {
            match v {
                Operand::Cap(_) => Ok(v),
                Operand::Int(_) => {
                    let c = self.alloc_cap(e.line)?;
                    self.emit(Instr::cmod(Op::CFromPtr, Self::reg(c), DDC, Self::reg(v)));
                    self.free_op(v);
                    Ok(c)
                }
            }
        } else {
            self.coerce_int(v, e.line)
        }
    }

    // --- Calls ---

    #[allow(clippy::too_many_lines)]
    fn gen_call(&mut self, name: &str, args: &[Expr], e: &Expr) -> Result<Operand, CompileError> {
        if INTRINSICS.contains(&name) && self.unit.func(name).is_none() {
            return self.gen_intrinsic(name, args, e);
        }
        let f = self
            .unit
            .func(name)
            .ok_or_else(|| CompileError::new(e.line, format!("unknown function `{name}`")))?;
        let params: Vec<Type> = f.params.iter().map(|p| p.ty.clone()).collect();

        // Evaluate arguments into temps (they become live stack values).
        let mut arg_ops = Vec::with_capacity(args.len());
        for (arg, pty) in args.iter().zip(&params) {
            let v = self.gen_maybe_array(arg)?;
            let v = if self.is_cap_value(pty) {
                match v {
                    Operand::Cap(_) => v,
                    Operand::Int(_) => {
                        let c = self.alloc_cap(arg.line)?;
                        self.emit(Instr::cmod(Op::CFromPtr, Self::reg(c), DDC, Self::reg(v)));
                        self.free_op(v);
                        c
                    }
                }
            } else {
                self.coerce_int(v, arg.line)?
            };
            arg_ops.push(v);
        }

        // Spill every live value (arguments included), then marshal the
        // arguments into the argument registers from their spill slots.
        self.spill_all();
        let mut int_idx = 0u8;
        let mut cap_idx = 0u8;
        for op in &arg_ops {
            match op {
                Operand::Int(r) => {
                    let (ld, _) = self.frame_ops(8, false);
                    self.frame_mem(ld, A0 + int_idx, Self::int_spill_off(*r));
                    int_idx += 1;
                }
                Operand::Cap(r) => {
                    let base = self.frame_base_reg();
                    self.emit(Instr::mem(
                        Op::Clc,
                        CA0 + cap_idx,
                        base,
                        Self::cap_spill_off(*r),
                    ));
                    cap_idx += 1;
                }
            }
        }
        let pos = self.emit(Instr::new(Op::Jal, 0, 0, 0, 0));
        self.call_fixups.push((pos, name.to_string(), e.line));

        // Free argument registers, reload surviving values.
        for op in arg_ops {
            self.free_op(op);
        }
        let survivors = self.live.clone();
        self.reload(&survivors);

        // Fetch the result.
        let want_cap = self.is_cap_value(&f.ret);
        let dest = self.alloc_kind(want_cap, e.line)?;
        match dest {
            Operand::Int(r) => {
                self.emit(Instr::r3(Op::Addu, r, V0, ZERO));
            }
            Operand::Cap(c) => {
                self.emit(Instr::cmod(Op::CMove, c, CV0, 0));
            }
        }
        Ok(dest)
    }

    fn gen_intrinsic(
        &mut self,
        name: &str,
        args: &[Expr],
        e: &Expr,
    ) -> Result<Operand, CompileError> {
        match name {
            "abort" => {
                self.emit(Instr::new(Op::Break, 0, 0, 0, 0));
                let r = self.alloc_int(e.line)?;
                self.emit(Instr::li(Self::reg(r), 0));
                Ok(r)
            }
            "clock" => {
                self.spill_all();
                self.emit(Instr::syscall(sys::CLOCK));
                let survivors = self.live.clone();
                self.reload(&survivors);
                let r = self.alloc_int(e.line)?;
                self.emit(Instr::r3(Op::Addu, Self::reg(r), V0, ZERO));
                Ok(r)
            }
            "putchar" | "putint" | "free" => {
                let v = self.gen_maybe_array(&args[0])?;
                let iv = self.coerce_int(v, e.line)?;
                self.emit(Instr::r3(Op::Addu, A0, Self::reg(iv), ZERO));
                self.free_op(iv);
                let code = match name {
                    "putchar" => sys::PUTCHAR,
                    "putint" => sys::PUTINT,
                    _ => sys::FREE,
                };
                self.emit(Instr::syscall(code));
                let r = self.alloc_int(e.line)?;
                self.emit(Instr::li(Self::reg(r), 0));
                Ok(r)
            }
            "memcpy" => {
                // Tag-preserving copy via the MEMCPY syscall: capability
                // ABIs pass bounded capabilities in c3/c4 (checked by the
                // VM), the MIPS ABI passes raw addresses in a0/a1.
                let dst = self.gen_ptr(&args[0])?;
                let src = self.gen_ptr(&args[1])?;
                let n = self.gen(&args[2])?;
                let n = self.coerce_int(n, e.line)?;
                self.emit(Instr::r3(Op::Addu, 6, Self::reg(n), ZERO)); // a2
                self.free_op(n);
                match (dst, src) {
                    (Operand::Cap(d), Operand::Cap(s)) => {
                        self.emit(Instr::cmod(Op::CMove, CA0, d, 0));
                        self.emit(Instr::cmod(Op::CMove, CA0 + 1, s, 0));
                    }
                    (d, s) => {
                        self.emit(Instr::r3(Op::Addu, A0, Self::reg(d), ZERO));
                        self.emit(Instr::r3(Op::Addu, A0 + 1, Self::reg(s), ZERO));
                    }
                }
                self.free_op(src);
                self.emit(Instr::syscall(sys::MEMCPY));
                Ok(dst)
            }
            "malloc" => {
                let v = self.gen(&args[0])?;
                let iv = self.coerce_int(v, e.line)?;
                self.emit(Instr::r3(Op::Addu, A0, Self::reg(iv), ZERO));
                self.free_op(iv);
                self.emit(Instr::syscall(sys::MALLOC));
                if self.abi.is_cheri() {
                    let c = self.alloc_cap(e.line)?;
                    self.emit(Instr::cmod(Op::CMove, Self::reg(c), CV0, 0));
                    Ok(c)
                } else {
                    let r = self.alloc_int(e.line)?;
                    self.emit(Instr::r3(Op::Addu, Self::reg(r), V0, ZERO));
                    Ok(r)
                }
            }
            other => self.err(e.line, format!("unknown intrinsic `{other}`")),
        }
    }

    // --- Statements ---

    fn gen_block(&mut self, b: &Block) -> Result<(), CompileError> {
        self.scopes.push(HashMap::new());
        for s in &b.stmts {
            self.gen_stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn gen_stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Decl {
                name,
                ty,
                init,
                line,
            } => {
                let off = self.define_local(name, ty);
                if let Some(e) = init {
                    if let (Type::Array { elem, .. }, ExprKind::StrLit(text)) = (ty, &e.kind) {
                        if **elem == Type::char_() {
                            // Copy the literal into the local array.
                            let src_addr = self.intern_string(text);
                            let n = text.len() as u64 + 1;
                            let tmp = self.alloc_int(*line)?;
                            for i in 0..n {
                                // Byte-by-byte; literals in workloads are short.
                                let src = Addr::Global(src_addr + i, 1);
                                let b = self.load_addr(src, &Type::char_(), *line)?;
                                self.store_addr(
                                    Addr::Frame(off + i as i32),
                                    &Type::char_(),
                                    b,
                                    *line,
                                )?;
                                self.free_op(b);
                            }
                            self.free_op(tmp);
                            return Ok(());
                        }
                    }
                    let v = self.gen_maybe_array(e)?;
                    let v = self.coerce_for_store(v, ty, *line)?;
                    self.store_addr(Addr::Frame(off), ty, v, *line)?;
                    self.free_op(v);
                }
                Ok(())
            }
            Stmt::Expr(e) => {
                let v = self.gen(e)?;
                self.free_op(v);
                Ok(())
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let else_l = self.new_label();
                let end_l = self.new_label();
                let c = self.gen(cond)?;
                let cb = self.coerce_bool(c, cond.line)?;
                self.emit_branch_if_zero(Self::reg(cb), else_l);
                self.free_op(cb);
                self.gen_block(then_branch)?;
                self.emit_jump(end_l);
                self.bind(else_l);
                if let Some(eb) = else_branch {
                    self.gen_block(eb)?;
                }
                self.bind(end_l);
                Ok(())
            }
            Stmt::While { cond, body } => {
                let head = self.new_label();
                let end = self.new_label();
                self.bind(head);
                let c = self.gen(cond)?;
                let cb = self.coerce_bool(c, cond.line)?;
                self.emit_branch_if_zero(Self::reg(cb), end);
                self.free_op(cb);
                self.loops.push(Loop {
                    breaks: Vec::new(),
                    continues: Vec::new(),
                });
                self.gen_block(body)?;
                let lp = self.loops.pop().expect("loop");
                for pos in lp.continues {
                    self.label_fixups.push((pos, head));
                }
                self.emit_jump(head);
                self.bind(end);
                for pos in lp.breaks {
                    self.label_fixups.push((pos, end));
                }
                Ok(())
            }
            Stmt::DoWhile { body, cond } => {
                let head = self.new_label();
                let check = self.new_label();
                let end = self.new_label();
                self.bind(head);
                self.loops.push(Loop {
                    breaks: Vec::new(),
                    continues: Vec::new(),
                });
                self.gen_block(body)?;
                let lp = self.loops.pop().expect("loop");
                self.bind(check);
                for pos in lp.continues {
                    self.label_fixups.push((pos, check));
                }
                let c = self.gen(cond)?;
                let cb = self.coerce_bool(c, cond.line)?;
                self.emit_branch_if_nonzero(Self::reg(cb), head);
                self.free_op(cb);
                self.bind(end);
                for pos in lp.breaks {
                    self.label_fixups.push((pos, end));
                }
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.gen_stmt(i)?;
                }
                let head = self.new_label();
                let step_l = self.new_label();
                let end = self.new_label();
                self.bind(head);
                if let Some(c) = cond {
                    let v = self.gen(c)?;
                    let cb = self.coerce_bool(v, c.line)?;
                    self.emit_branch_if_zero(Self::reg(cb), end);
                    self.free_op(cb);
                }
                self.loops.push(Loop {
                    breaks: Vec::new(),
                    continues: Vec::new(),
                });
                self.gen_block(body)?;
                let lp = self.loops.pop().expect("loop");
                self.bind(step_l);
                for pos in lp.continues {
                    self.label_fixups.push((pos, step_l));
                }
                if let Some(st) = step {
                    let v = self.gen(st)?;
                    self.free_op(v);
                }
                self.emit_jump(head);
                self.bind(end);
                for pos in lp.breaks {
                    self.label_fixups.push((pos, end));
                }
                self.scopes.pop();
                Ok(())
            }
            Stmt::Return(e, line) => {
                if let Some(e) = e {
                    let v = self.gen_maybe_array(e)?;
                    match v {
                        Operand::Int(r) => {
                            self.emit(Instr::r3(Op::Addu, V0, r, ZERO));
                        }
                        Operand::Cap(c) => {
                            self.emit(Instr::cmod(Op::CMove, CV0, c, 0));
                            // Also expose the address for integer callers.
                            self.emit(Instr::new(Op::CToPtr, V0, c, DDC, 0));
                        }
                    }
                    self.free_op(v);
                } else {
                    self.emit(Instr::li(V0, 0));
                }
                let _ = line;
                self.emit_jump(self.epilogue);
                Ok(())
            }
            Stmt::Break(line) => {
                let pos = self.emit(Instr::new(Op::J, 0, 0, 0, 0));
                match self.loops.last_mut() {
                    Some(l) => {
                        l.breaks.push(pos);
                        Ok(())
                    }
                    None => self.err(*line, "break outside loop"),
                }
            }
            Stmt::Continue(line) => {
                let pos = self.emit(Instr::new(Op::J, 0, 0, 0, 0));
                match self.loops.last_mut() {
                    Some(l) => {
                        l.continues.push(pos);
                        Ok(())
                    }
                    None => self.err(*line, "continue outside loop"),
                }
            }
            Stmt::Block(b) => self.gen_block(b),
        }
    }
}

fn int_signedness(ty: &Type) -> bool {
    match ty {
        Type::Int { signed, .. } | Type::IntPtr { signed } | Type::IntCap { signed } => *signed,
        _ => true,
    }
}

fn const_eval(e: &Expr, ti: &TargetInfo, unit: &TranslationUnit) -> Option<i64> {
    match &e.kind {
        ExprKind::IntLit(v) => Some(*v),
        ExprKind::Unary(UnOp::Neg, inner) => Some(-const_eval(inner, ti, unit)?),
        ExprKind::SizeofType(ty) => Some(size_of(ty, &unit.structs, ti) as i64),
        ExprKind::Binary(BinOp::Add, a, b) => {
            Some(const_eval(a, ti, unit)? + const_eval(b, ti, unit)?)
        }
        ExprKind::Binary(BinOp::Mul, a, b) => {
            Some(const_eval(a, ti, unit)? * const_eval(b, ti, unit)?)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_vm::{Vm, VmConfig, VmTrap};

    fn run_abi(src: &str, abi: Abi) -> Result<(i64, String), VmTrap> {
        let prog = compile(src, abi).unwrap_or_else(|e| panic!("{abi}: compile: {e}"));
        let mut vm = Vm::new(prog, VmConfig::functional());
        let status = vm.run(50_000_000)?;
        Ok((status.code, vm.output_string()))
    }

    fn run_all(src: &str, expect: i64) {
        for abi in Abi::ALL {
            let (code, _) = run_abi(src, abi).unwrap_or_else(|e| panic!("{abi}: {e}"));
            assert_eq!(code, expect, "abi {abi}");
        }
    }

    #[test]
    fn arithmetic_and_loops() {
        run_all(
            "int main(void) {
                int s = 0;
                for (int i = 1; i <= 10; i++) { s += i; }
                return s;
            }",
            55,
        );
    }

    #[test]
    fn function_calls_and_recursion() {
        run_all(
            "int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
             int main(void) { return fib(10); }",
            55,
        );
    }

    #[test]
    fn arrays_and_pointer_walk() {
        run_all(
            "int main(void) {
                int a[8];
                for (int i = 0; i < 8; i++) { a[i] = i * i; }
                int *p = a;
                int s = 0;
                for (int i = 0; i < 8; i++) { s += p[i]; }
                return s;
            }",
            140,
        );
    }

    #[test]
    fn structs_and_heap() {
        run_all(
            "struct node { long v; struct node *next; };
             int main(void) {
                struct node *head = 0;
                for (int i = 1; i <= 5; i++) {
                    struct node *n = (struct node*)malloc(sizeof(struct node));
                    n->v = i;
                    n->next = head;
                    head = n;
                }
                long s = 0;
                while (head) { s += head->v; head = head->next; }
                return (int)s;
             }",
            15,
        );
    }

    #[test]
    fn globals_and_strings() {
        let src = "int counter = 40;
                   char msg[] = \"ok\";
                   int main(void) { counter += 2; puts(msg); return counter; }";
        for abi in Abi::ALL {
            let (code, out) = run_abi(src, abi).unwrap();
            assert_eq!(code, 42, "{abi}");
            assert_eq!(out, "ok\n", "{abi}");
        }
    }

    #[test]
    fn runtime_helpers_work() {
        run_all(
            r#"int main(void) {
                char buf[16];
                memset(buf, 0, 16);
                memcpy(buf, "hello", 6);
                assert(strlen(buf) == 5);
                assert(strcmp(buf, "hello") == 0);
                assert(strcmp(buf, "hellp") < 0);
                return (int)strlen(buf);
            }"#,
            5,
        );
    }

    #[test]
    fn pointer_subtraction_works_on_mips_and_v3() {
        let src = "int main(void) {
            int a[8];
            a[3] = 7;
            int *p = &a[5];
            int *q = p - 2;
            return *q + (int)(p - q);
        }";
        for abi in [Abi::Mips, Abi::CheriV3] {
            let (code, _) = run_abi(src, abi).unwrap();
            assert_eq!(code, 9, "{abi}");
        }
    }

    #[test]
    fn pointer_subtraction_is_a_compile_error_on_v2() {
        let src = "int main(void) { int a[4]; int *p = &a[2]; int *q = p - 1; return 0; }";
        let err = compile(src, Abi::CheriV2).unwrap_err();
        assert!(err.msg.contains("subtraction"), "{err}");
        // But the same program compiles for the other ABIs.
        assert!(compile(src, Abi::Mips).is_ok());
        assert!(compile(src, Abi::CheriV3).is_ok());
    }

    #[test]
    fn cheri_catches_overflow_mips_does_not() {
        // The headline security property: an out-of-bounds heap write.
        let src = "int main(void) {
            char *p = (char*)malloc(16);
            p[24] = 1;
            return 0;
        }";
        let (code, _) = run_abi(src, Abi::Mips).expect("MIPS lets the overflow corrupt memory");
        assert_eq!(code, 0);
        for abi in [Abi::CheriV2, Abi::CheriV3] {
            let prog = compile(src, abi).unwrap();
            let mut vm = Vm::new(prog, VmConfig::functional());
            let trap = vm.run(1_000_000).unwrap_err();
            assert!(
                matches!(trap.cause, cheri_vm::TrapCause::Capability(_)),
                "{abi}: {trap}"
            );
        }
    }

    #[test]
    fn out_of_bounds_intermediate_across_abis() {
        // Idiom II at the ISA level: fine on MIPS and CHERIv3, traps at the
        // arithmetic on CHERIv2 (CIncBase past the end).
        let src = "int main(void) {
            int a[4];
            a[2] = 9;
            int *p = a;
            p = p + 9;
            p = p - 7;
            return *p;
        }";
        assert_eq!(run_abi(src, Abi::Mips).unwrap().0, 9);
        assert_eq!(run_abi(src, Abi::CheriV3).unwrap().0, 9);
        assert!(compile(src, Abi::CheriV2).is_err()); // p - 7 rejected
    }

    #[test]
    fn ternary_and_logical_ops() {
        run_all(
            "int main(void) {
                int x = 5;
                int y = x > 3 ? 10 : 20;
                int z = (x > 0 && y == 10) || x == 99;
                return y + z;          /* 11 */
            }",
            11,
        );
    }

    #[test]
    fn do_while_break_continue() {
        run_all(
            "int main(void) {
                int s = 0;
                int i = 0;
                do {
                    i++;
                    if (i == 3) { continue; }
                    if (i > 6) { break; }
                    s += i;
                } while (1);
                return s;  /* 1+2+4+5+6 = 18 */
            }",
            18,
        );
    }

    #[test]
    fn putint_output() {
        let (_, out) = run_abi(
            "int main(void) { putint(123); putchar(10); return 0; }",
            Abi::CheriV3,
        )
        .unwrap();
        assert_eq!(out, "123\n");
    }

    #[test]
    fn nested_calls_preserve_live_values() {
        run_all(
            "int id(int x) { return x; }
             int main(void) { return id(1) + id(2) * id(3) + id(id(4)); }",
            11,
        );
    }

    #[test]
    fn unions_via_memory() {
        run_all(
            "union u { unsigned int i; unsigned char b[4]; };
             int main(void) {
                union u v;
                v.i = 0x01020304;
                return v.b[0] + v.b[3];
             }",
            5,
        );
    }

    #[test]
    fn sizeof_reflects_abi() {
        let src = "int main(void) { return (int)sizeof(int*); }";
        assert_eq!(run_abi(src, Abi::Mips).unwrap().0, 8);
        assert_eq!(run_abi(src, Abi::CheriV2).unwrap().0, 32);
        assert_eq!(run_abi(src, Abi::CheriV3).unwrap().0, 32);
    }

    #[test]
    fn cap_instruction_mix_differs() {
        let src = "int main(void) {
            int a[16];
            for (int i = 0; i < 16; i++) { a[i] = i; }
            int s = 0;
            for (int i = 0; i < 16; i++) { s += a[i]; }
            return s;
        }";
        let prog_mips = compile(src, Abi::Mips).unwrap();
        let prog_v3 = compile(src, Abi::CheriV3).unwrap();
        let mut vm_m = Vm::new(prog_mips, VmConfig::functional());
        let mut vm_c = Vm::new(prog_v3, VmConfig::functional());
        let sm = vm_m.run(10_000_000).unwrap().stats;
        let sc = vm_c.run(10_000_000).unwrap().stats;
        assert_eq!(sm.capability_instructions(), 0);
        assert!(sc.capability_instructions() > 0);
    }
}
