//! The Table 4 porting-effort measurement.
//!
//! The paper reports, per workload, how many lines changed to port from
//! MIPS to CHERIv2 and CHERIv3, split into **annotation** changes (adding
//! `__capability` qualifiers) and **semantic** changes (rewriting code the
//! model cannot express, like tcpdump's pointer subtraction).
//!
//! We measure the same quantities over our workload variants:
//!
//! * annotation lines — counted by walking the typed AST for lines
//!   declaring pointers (the lines the `__capability` qualifier lands on in
//!   a hybrid port; in a pure-capability build "no annotation would be
//!   required", §5.2);
//! * semantic lines — an LCS diff between the baseline and ported sources,
//!   counting changed/inserted/deleted lines that are not pure annotation
//!   insertions (`__capability` is annotation; `__input`/`__output` change
//!   behaviour and count as semantic, matching the paper's tcpdump note).

use cheri_c::{Block, Stmt, TranslationUnit, Type};
use std::collections::BTreeSet;

/// Number of source lines (1-based) declaring at least one pointer — the
/// annotation burden of a hybrid `__capability` port.
pub fn annotation_lines(src: &str) -> u64 {
    let Ok(unit) = cheri_c::parse(src) else {
        return 0;
    };
    let mut lines: BTreeSet<u32> = BTreeSet::new();
    collect_ptr_decl_lines(&unit, &mut lines);
    lines.len() as u64
}

fn collect_ptr_decl_lines(unit: &TranslationUnit, lines: &mut BTreeSet<u32>) {
    for g in &unit.globals {
        if g.ty.is_pointer() {
            lines.insert(g.line);
        }
    }
    for f in &unit.funcs {
        if f.params.iter().any(|p| p.ty.decay().is_pointer()) || f.ret.is_pointer() {
            lines.insert(f.line);
        }
        walk_block(&f.body, lines);
    }
    // Struct fields: attribute to the function lines is impossible, so a
    // struct with pointer fields counts one line per pointer field (the
    // paper annotated field declarations too). Fields carry no line info in
    // our AST, so we approximate with one line per pointer field.
    for s in &unit.structs {
        for fld in &s.fields {
            if matches!(fld.ty, Type::Ptr { .. }) {
                // Synthetic line key: ensures distinct counting without a
                // real location (cannot collide with 1-based real lines).
                lines.insert(u32::MAX - lines.len() as u32);
            }
        }
    }
}

fn walk_block(b: &Block, lines: &mut BTreeSet<u32>) {
    for s in &b.stmts {
        match s {
            Stmt::Decl { ty, line, .. } if ty.is_pointer() => {
                lines.insert(*line);
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                walk_block(then_branch, lines);
                if let Some(e) = else_branch {
                    walk_block(e, lines);
                }
            }
            Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => walk_block(body, lines),
            Stmt::For { init, body, .. } => {
                if let Some(i) = init {
                    if let Stmt::Decl { ty, line, .. } = &**i {
                        if ty.is_pointer() {
                            lines.insert(*line);
                        }
                    }
                }
                walk_block(body, lines);
            }
            Stmt::Block(b) => walk_block(b, lines),
            _ => {}
        }
    }
}

/// Strips capability annotations for annotation-vs-semantic comparison.
fn normalize(line: &str) -> String {
    line.replace("__capability", "")
        .chars()
        .filter(|c| !c.is_whitespace())
        .collect()
}

/// Classified line-change counts between a baseline and a ported source.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PortDiff {
    /// Lines whose only change is a `__capability` annotation.
    pub annotation: u64,
    /// Lines with semantic changes (rewrites, insertions, deletions,
    /// `__input`/`__output`).
    pub semantic: u64,
}

impl PortDiff {
    /// Total changed lines.
    pub fn total(&self) -> u64 {
        self.annotation + self.semantic
    }
}

/// Diffs `base` against `ported` line-by-line (LCS) and classifies each
/// changed line.
pub fn diff_port(base: &str, ported: &str) -> PortDiff {
    let a: Vec<&str> = base.lines().collect();
    let b: Vec<&str> = ported.lines().collect();
    // LCS table over normalized-equal lines.
    let eq = |x: &str, y: &str| x == y;
    let n = a.len();
    let m = b.len();
    let mut lcs = vec![vec![0u32; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            lcs[i][j] = if eq(a[i], b[j]) {
                lcs[i + 1][j + 1] + 1
            } else {
                lcs[i + 1][j].max(lcs[i][j + 1])
            };
        }
    }
    let mut d = PortDiff::default();
    let (mut i, mut j) = (0, 0);
    let mut pending_del: Vec<&str> = Vec::new();
    let mut pending_ins: Vec<&str> = Vec::new();
    let flush = |dels: &mut Vec<&str>, inss: &mut Vec<&str>, d: &mut PortDiff| {
        // Pair deletions with insertions; classify pairs, count leftovers
        // as semantic.
        let pairs = dels.len().min(inss.len());
        for k in 0..pairs {
            if normalize(dels[k]) == normalize(inss[k]) {
                d.annotation += 1;
            } else {
                d.semantic += 1;
            }
        }
        d.semantic += (dels.len().max(inss.len()) - pairs) as u64;
        dels.clear();
        inss.clear();
    };
    while i < n && j < m {
        if eq(a[i], b[j]) {
            flush(&mut pending_del, &mut pending_ins, &mut d);
            i += 1;
            j += 1;
        } else if lcs[i + 1][j] >= lcs[i][j + 1] {
            pending_del.push(a[i]);
            i += 1;
        } else {
            pending_ins.push(b[j]);
            j += 1;
        }
    }
    pending_del.extend(&a[i..]);
    pending_ins.extend(&b[j..]);
    flush(&mut pending_del, &mut pending_ins, &mut d);
    d
}

/// One row of Table 4.
#[derive(Clone, Debug)]
pub struct Table4Row {
    /// Workload name.
    pub program: String,
    /// Baseline line count.
    pub baseline_loc: u64,
    /// CHERIv2: annotation-only lines.
    pub v2_annotation: u64,
    /// CHERIv2: semantic lines.
    pub v2_semantic: u64,
    /// CHERIv3: annotation-only lines.
    pub v3_annotation: u64,
    /// CHERIv3: semantic lines.
    pub v3_semantic: u64,
}

/// Computes Table 4 over our workload corpus.
pub fn table4() -> Vec<Table4Row> {
    use crate::sources;
    let olden: Vec<(String, String, String)> = vec![
        (
            sources::bisort(64),
            sources::bisort(64),
            sources::bisort(64),
        ),
        (sources::mst(16), sources::mst(16), sources::mst(16)),
        (
            sources::treeadd(6, 3),
            sources::treeadd(6, 3),
            sources::treeadd(6, 3),
        ),
        (
            sources::perimeter(4),
            sources::perimeter(4),
            sources::perimeter(4),
        ),
    ];
    let mut olden_row = Table4Row {
        program: "Olden".into(),
        baseline_loc: 0,
        v2_annotation: 0,
        v2_semantic: 0,
        v3_annotation: 0,
        v3_semantic: 0,
    };
    for (base, v2, v3) in &olden {
        olden_row.baseline_loc += base.lines().count() as u64;
        // Olden needs no semantic changes for either ABI (conservative
        // pointer use, §5.2): the port is annotation-only.
        olden_row.v2_annotation += annotation_lines(base);
        olden_row.v3_annotation += annotation_lines(base);
        olden_row.v2_semantic += diff_port(base, v2).semantic;
        olden_row.v3_semantic += diff_port(base, v3).semantic;
    }

    let dhry = sources::dhrystone(50);
    let dhry_row = Table4Row {
        program: "Dhrystone".into(),
        baseline_loc: dhry.lines().count() as u64,
        v2_annotation: annotation_lines(&dhry),
        v2_semantic: 0,
        v3_annotation: annotation_lines(&dhry),
        v3_semantic: 0,
    };

    let base = sources::tcpdump_baseline();
    let v2 = sources::tcpdump_cheriv2();
    let v3 = sources::tcpdump_cheriv3();
    let d2 = diff_port(&base, &v2);
    let d3 = diff_port(&base, &v3);
    let tcp_row = Table4Row {
        program: "tcpdump".into(),
        baseline_loc: base.lines().count() as u64,
        v2_annotation: annotation_lines(&base),
        v2_semantic: d2.semantic + d2.annotation, // index rewrite touches decl lines too
        v3_annotation: annotation_lines(&base),
        v3_semantic: d3.semantic,
    };
    vec![olden_row, dhry_row, tcp_row]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sources;

    #[test]
    fn identical_sources_have_empty_diff() {
        let s = sources::treeadd(4, 1);
        assert_eq!(diff_port(&s, &s), PortDiff::default());
    }

    #[test]
    fn annotation_only_changes_classified() {
        let base = "int *f(int *p) {\n    int *q = p;\n    return q;\n}\n";
        let ported = "int * __capability f(int * __capability p) {\n    int * __capability q = p;\n    return q;\n}\n";
        let d = diff_port(base, ported);
        assert_eq!(d.annotation, 2);
        assert_eq!(d.semantic, 0);
    }

    #[test]
    fn semantic_changes_classified() {
        let base = "long f(char *a, char *b) {\n    return a - b;\n}\n";
        let ported = "long f(char *a, char *b) {\n    return 0;\n}\n";
        let d = diff_port(base, ported);
        assert_eq!(d.annotation, 0);
        assert_eq!(d.semantic, 1);
    }

    #[test]
    fn input_qualifier_counts_as_semantic() {
        let base = sources::tcpdump_baseline();
        let v3 = sources::tcpdump_cheriv3();
        let d = diff_port(&base, &v3);
        assert_eq!(d.semantic, 2, "the paper's two changed lines");
        assert_eq!(d.annotation, 0);
    }

    #[test]
    fn tcpdump_v2_port_is_mostly_semantic() {
        let d = diff_port(&sources::tcpdump_baseline(), &sources::tcpdump_cheriv2());
        assert!(d.semantic >= 10, "index rewrite touches many lines: {d:?}");
    }

    #[test]
    fn annotation_lines_counts_pointer_decls() {
        let n = annotation_lines(
            "int g;\nint *gp;\nint *f(int *p) {\n    int *q = p;\n    int plain = 0;\n    return q;\n}\n",
        );
        // gp, f's signature, q — 3 lines.
        assert_eq!(n, 3);
    }

    #[test]
    fn table4_shape_matches_paper() {
        let rows = table4();
        assert_eq!(rows.len(), 3);
        let olden = &rows[0];
        let tcp = &rows[2];
        // Olden/Dhrystone: annotation only, no semantic changes.
        assert_eq!(olden.v2_semantic, 0);
        assert_eq!(olden.v3_semantic, 0);
        assert!(olden.v2_annotation > 0);
        // tcpdump: big semantic rewrite for v2, exactly 2 lines for v3.
        assert!(tcp.v2_semantic > 10);
        assert_eq!(tcp.v3_semantic, 2);
        // The paper's headline ratio: v3 semantic cost is orders of
        // magnitude smaller than v2's.
        assert!(tcp.v2_semantic > 5 * tcp.v3_semantic);
    }
}
