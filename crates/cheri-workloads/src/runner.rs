//! Compile-and-run plumbing for the workloads.

use cheri_cache::CacheStats;
use cheri_compile::{compile, Abi, CompileError};
use cheri_vm::{Vm, VmConfig, VmTrap};
use std::error::Error;
use std::fmt;

/// A workload execution failed.
#[derive(Clone, Debug)]
pub enum WorkloadError {
    /// Compilation failed (e.g. pointer subtraction under CHERIv2).
    Compile(CompileError),
    /// The machine trapped.
    Trap(VmTrap),
    /// An input symbol was not found in the program image.
    MissingSymbol(String),
    /// An input did not fit its buffer.
    InputTooLarge {
        /// The symbol being filled.
        symbol: String,
        /// Bytes provided.
        provided: u64,
        /// Buffer capacity.
        capacity: u64,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Compile(e) => write!(f, "compile error: {e}"),
            WorkloadError::Trap(t) => write!(f, "vm trap: {t}"),
            WorkloadError::MissingSymbol(s) => write!(f, "no such symbol: {s}"),
            WorkloadError::InputTooLarge {
                symbol,
                provided,
                capacity,
            } => write!(
                f,
                "input for {symbol} is {provided} bytes but the buffer holds {capacity}"
            ),
        }
    }
}

impl Error for WorkloadError {}

impl From<CompileError> for WorkloadError {
    fn from(e: CompileError) -> WorkloadError {
        WorkloadError::Compile(e)
    }
}

impl From<VmTrap> for WorkloadError {
    fn from(e: VmTrap) -> WorkloadError {
        WorkloadError::Trap(e)
    }
}

/// The result of one workload run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Exit code (0 on success).
    pub exit: i64,
    /// Console output — compared across ABIs for correctness.
    pub output: String,
    /// Cycles charged by the machine (pipeline + cache model).
    pub cycles: u64,
    /// Instructions retired.
    pub instret: u64,
    /// Cache statistics, when the cache model is enabled.
    pub cache: Option<CacheStats>,
    /// CHERI-extension instructions retired.
    pub cap_instructions: u64,
}

impl RunOutcome {
    /// Seconds at the paper's 100 MHz softcore clock.
    pub fn seconds_at_100mhz(&self) -> f64 {
        self.cycles as f64 / 100.0e6
    }
}

/// Compiles `source` for `abi`, pokes `inputs` into the named global
/// buffers, and runs to completion.
///
/// # Errors
///
/// [`WorkloadError`] on compile failure, missing symbols, or traps.
pub fn run_workload(
    source: &str,
    abi: Abi,
    cfg: VmConfig,
    inputs: &[(&str, &[u8])],
    fuel: u64,
) -> Result<RunOutcome, WorkloadError> {
    let prog = compile(source, abi)?;
    let symbols = prog.symbols.clone();
    let mut vm = Vm::new(prog, cfg);
    for (name, bytes) in inputs {
        let sym = symbols
            .iter()
            .find(|s| !s.is_func && s.name == *name)
            .ok_or_else(|| WorkloadError::MissingSymbol((*name).to_string()))?;
        if bytes.len() as u64 > sym.size {
            return Err(WorkloadError::InputTooLarge {
                symbol: (*name).to_string(),
                provided: bytes.len() as u64,
                capacity: sym.size,
            });
        }
        vm.mem_mut()
            .write_bytes(sym.value, bytes)
            .expect("symbol points into the data segment");
    }
    let status = vm.run(fuel)?;
    let stats = status.stats;
    Ok(RunOutcome {
        exit: status.code,
        output: vm.output_string(),
        cycles: stats.cycles,
        instret: stats.instret,
        cache: stats.cache,
        cap_instructions: stats.capability_instructions(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{inputs, sources};

    const FUEL: u64 = 2_000_000_000;

    fn run_fast(src: &str, abi: Abi, inputs: &[(&str, &[u8])]) -> RunOutcome {
        run_workload(src, abi, VmConfig::functional(), inputs, FUEL)
            .unwrap_or_else(|e| panic!("{abi}: {e}"))
    }

    fn identical_across_abis(src: &str, ins: &[(&str, &[u8])]) -> RunOutcome {
        let base = run_fast(src, Abi::Mips, ins);
        assert_eq!(base.exit, 0, "MIPS run failed: {}", base.output);
        for abi in [Abi::CheriV2, Abi::CheriV3] {
            let r = run_fast(src, abi, ins);
            assert_eq!(r.output, base.output, "{abi} output differs");
            assert_eq!(r.exit, 0);
            assert!(
                r.cap_instructions > 0,
                "{abi} should execute capability ops"
            );
        }
        base
    }

    /// The runner plumbs `VmConfig::backend` straight through: every
    /// execution backend reproduces the reference run's output, exit,
    /// instruction count and simulated cycles on a real workload.
    #[test]
    fn runner_is_backend_invariant() {
        use cheri_vm::{BackendKind, OptLevel};
        let src = sources::treeadd(5, 2);
        let base_cfg = VmConfig::functional()
            .with_backend(BackendKind::Reference)
            .with_opt_level(OptLevel::None);
        let base = run_workload(&src, Abi::CheriV3, base_cfg, &[], FUEL).unwrap();
        for backend in BackendKind::ALL {
            for opt in [OptLevel::None, OptLevel::Peephole] {
                let cfg = VmConfig::functional()
                    .with_backend(backend)
                    .with_opt_level(opt);
                let r = run_workload(&src, Abi::CheriV3, cfg, &[], FUEL).unwrap();
                assert_eq!(r.exit, base.exit, "{backend:?}/{opt:?}");
                assert_eq!(r.output, base.output, "{backend:?}/{opt:?}");
                assert_eq!(r.instret, base.instret, "{backend:?}/{opt:?}");
                assert_eq!(r.cycles, base.cycles, "{backend:?}/{opt:?}");
            }
        }
    }

    #[test]
    fn treeadd_matches_across_abis() {
        let r = identical_across_abis(&sources::treeadd(6, 3), &[]);
        // 2^6 - 1 = 63 nodes, 3 passes.
        assert_eq!(r.output.trim(), "189");
    }

    #[test]
    fn bisort_sorts_and_matches() {
        identical_across_abis(&sources::bisort(64), &[]);
    }

    #[test]
    fn perimeter_matches() {
        identical_across_abis(&sources::perimeter(4), &[]);
    }

    #[test]
    fn mst_matches() {
        identical_across_abis(&sources::mst(16), &[]);
    }

    #[test]
    fn malloc_stress_matches_and_churns() {
        let r = identical_across_abis(&sources::malloc_stress(24, 4), &[]);
        let fields: Vec<i64> = r
            .output
            .split_whitespace()
            .map(|t| t.parse().unwrap())
            .collect();
        let (allocs, frees, live) = (fields[1], fields[2], fields[3]);
        assert_eq!(allocs, 24 * 4);
        assert!(frees > 0, "the churn must actually free nodes");
        assert_eq!(live, allocs - frees);
    }

    #[test]
    fn malloc_stress_oob_matches_on_idiom_ii_abis() {
        // The far-out-of-bounds probe is Idiom II: fine on MIPS and
        // CHERIv3, impossible under CHERIv2's base-moving arithmetic.
        let src = sources::malloc_stress_oob(24, 4);
        let base = run_fast(&src, Abi::Mips, &[]);
        assert_eq!(base.exit, 0, "MIPS run failed: {}", base.output);
        let v3 = run_fast(&src, Abi::CheriV3, &[]);
        assert_eq!(v3.output, base.output);
        let v2 = run_workload(&src, Abi::CheriV2, VmConfig::functional(), &[], FUEL);
        assert!(
            matches!(v2, Err(WorkloadError::Trap(_))),
            "CHERIv2 must reject the out-of-bounds intermediate"
        );
    }

    #[test]
    fn dhrystone_matches() {
        identical_across_abis(&sources::dhrystone(50), &[]);
    }

    #[test]
    fn tcpdump_baseline_runs_on_mips_and_v3() {
        let trace = inputs::packet_trace(200, 42);
        let src = sources::tcpdump_baseline();
        let a = run_fast(&src, Abi::Mips, &[("trace", &trace)]);
        let b = run_fast(&src, Abi::CheriV3, &[("trace", &trace)]);
        assert_eq!(a.output, b.output);
        // The counters should show a realistic mix.
        let fields: Vec<i64> = a
            .output
            .split_whitespace()
            .map(|t| t.parse().unwrap())
            .collect();
        assert_eq!(fields.len(), 6);
        assert!(fields[0] > fields[1], "more TCP than UDP");
        assert!(fields[0] + fields[1] + fields[2] + fields[3] + fields[4] == 200);
    }

    #[test]
    fn tcpdump_baseline_cannot_compile_for_v2() {
        let err = cheri_compile::compile(&sources::tcpdump_baseline(), Abi::CheriV2).unwrap_err();
        assert!(err.msg.contains("subtraction"));
    }

    #[test]
    fn tcpdump_v2_port_runs_everywhere_with_same_output() {
        let trace = inputs::packet_trace(150, 11);
        let ported = sources::tcpdump_cheriv2();
        let base = run_fast(
            &sources::tcpdump_baseline(),
            Abi::Mips,
            &[("trace", &trace)],
        );
        for abi in Abi::ALL {
            let r = run_fast(&ported, abi, &[("trace", &trace)]);
            assert_eq!(r.output, base.output, "{abi}");
        }
    }

    #[test]
    fn tcpdump_v3_port_matches_baseline() {
        let trace = inputs::packet_trace(100, 5);
        let base = run_fast(
            &sources::tcpdump_baseline(),
            Abi::CheriV3,
            &[("trace", &trace)],
        );
        let v3 = run_fast(
            &sources::tcpdump_cheriv3(),
            Abi::CheriV3,
            &[("trace", &trace)],
        );
        assert_eq!(v3.output, base.output);
    }

    #[test]
    fn zlib_compresses_and_matches() {
        let file = inputs::compressible_file(8192, 9);
        let plain = sources::zlib(8192, false);
        let base = identical_across_abis(&plain, &[("input", &file)]);
        let total_out: i64 = base
            .output
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(total_out > 0);
        assert!(
            (total_out as usize) < 8192,
            "compressible input should shrink: {total_out}"
        );
    }

    #[test]
    fn zlib_copying_produces_identical_stream() {
        let file = inputs::compressible_file(8192, 9);
        let plain = run_fast(
            &sources::zlib(8192, false),
            Abi::CheriV3,
            &[("input", &file)],
        );
        let copy = run_fast(
            &sources::zlib(8192, true),
            Abi::CheriV3,
            &[("input", &file)],
        );
        assert_eq!(
            plain.output, copy.output,
            "copying must not change the stream"
        );
        assert!(copy.instret > plain.instret, "copying costs work");
    }

    #[test]
    fn missing_symbol_is_reported() {
        let e = run_workload(
            "int main(void) { return 0; }",
            Abi::Mips,
            cheri_vm::VmConfig::functional(),
            &[("nope", &[1, 2, 3])],
            1000,
        )
        .unwrap_err();
        assert!(matches!(e, WorkloadError::MissingSymbol(_)));
    }
}
