//! Mini-C sources for every workload.
//!
//! Each generator takes its scale parameters so the bench harness can sweep
//! them; defaults mirror the paper's setup scaled to emulator speeds.

/// Olden `treeadd`: build a binary tree on the heap, sum it repeatedly.
pub fn treeadd(depth: u32, passes: u32) -> String {
    format!(
        r#"
struct tree {{ long val; struct tree *left; struct tree *right; }};

struct tree *build(int depth) {{
    struct tree *t = (struct tree*)malloc(sizeof(struct tree));
    t->val = 1;
    t->left = 0;
    t->right = 0;
    if (depth > 1) {{
        t->left = build(depth - 1);
        t->right = build(depth - 1);
    }}
    return t;
}}

long sum(struct tree *t) {{
    if (!t) {{ return 0; }}
    return t->val + sum(t->left) + sum(t->right);
}}

int main(void) {{
    struct tree *t = build({depth});
    long s = 0;
    for (int i = 0; i < {passes}; i++) {{
        s = s + sum(t);
    }}
    putint(s);
    putchar(10);
    return 0;
}}
"#
    )
}

/// Olden `bisort` (simplified to a linked-list merge sort — the pointer
/// behaviour, allocation pattern and traversal are what matter).
pub fn bisort(n: u32) -> String {
    format!(
        r#"
struct node {{ long v; struct node *next; }};

unsigned long seed = 12345;

long rnd(void) {{
    seed = seed * 1103515245 + 12345;
    return (long)((seed >> 16) & 32767);
}}

struct node *mklist(int n) {{
    struct node *head = 0;
    for (int i = 0; i < n; i++) {{
        struct node *x = (struct node*)malloc(sizeof(struct node));
        x->v = rnd();
        x->next = head;
        head = x;
    }}
    return head;
}}

struct node *merge(struct node *a, struct node *b) {{
    struct node dummy;
    struct node *tail = &dummy;
    dummy.next = 0;
    while (a && b) {{
        if (a->v <= b->v) {{ tail->next = a; a = a->next; }}
        else {{ tail->next = b; b = b->next; }}
        tail = tail->next;
    }}
    tail->next = a ? a : b;
    return dummy.next;
}}

struct node *msort(struct node *head) {{
    if (!head) {{ return 0; }}
    if (!head->next) {{ return head; }}
    struct node *slow = head;
    struct node *fast = head->next;
    while (fast && fast->next) {{
        slow = slow->next;
        fast = fast->next->next;
    }}
    struct node *mid = slow->next;
    slow->next = 0;
    return merge(msort(head), msort(mid));
}}

int main(void) {{
    struct node *l = mklist({n});
    l = msort(l);
    long check = 0;
    long i = 0;
    long sorted = 1;
    struct node *p = l;
    while (p) {{
        check = check + p->v * (i % 7 + 1);
        if (p->next && p->next->v < p->v) {{ sorted = 0; }}
        p = p->next;
        i = i + 1;
    }}
    assert(sorted == 1);
    putint(check);
    putchar(10);
    return 0;
}}
"#
    )
}

/// Olden `perimeter` (quadtree build + recursive traversal).
pub fn perimeter(depth: u32) -> String {
    format!(
        r#"
struct quad {{ int color; struct quad *nw; struct quad *ne; struct quad *sw; struct quad *se; }};

struct quad *build(int depth, unsigned long path) {{
    struct quad *q = (struct quad*)malloc(sizeof(struct quad));
    q->nw = 0;
    q->ne = 0;
    q->sw = 0;
    q->se = 0;
    if (depth == 0) {{
        q->color = (int)(path % 3 == 0);
        return q;
    }}
    q->color = 2;
    q->nw = build(depth - 1, path * 2 + 1);
    q->ne = build(depth - 1, path * 3 + 1);
    q->sw = build(depth - 1, path * 5 + 1);
    q->se = build(depth - 1, path * 7 + 1);
    return q;
}}

long perim(struct quad *q, long size) {{
    if (q->color != 2) {{
        if (q->color == 1) {{ return 4 * size; }}
        return 0;
    }}
    return perim(q->nw, size / 2) + perim(q->ne, size / 2)
         + perim(q->sw, size / 2) + perim(q->se, size / 2);
}}

int main(void) {{
    struct quad *q = build({depth}, 1);
    long p = perim(q, 4096);
    putint(p);
    putchar(10);
    return 0;
}}
"#
    )
}

/// Olden `mst` (adjacency lists on the heap, Prim's algorithm).
pub fn mst(nv: u32) -> String {
    format!(
        r#"
struct edge {{ int to; long w; struct edge *next; }};
struct vert {{ struct edge *adj; long key; int done; }};

struct vert verts[{nv}];
unsigned long seed = 99;

long rnd(void) {{
    seed = seed * 1103515245 + 12345;
    return (long)((seed >> 16) & xFFFF);
}}

void addedge(int a, int b, long w) {{
    struct edge *e = (struct edge*)malloc(sizeof(struct edge));
    e->to = b;
    e->w = w;
    e->next = verts[a].adj;
    verts[a].adj = e;
}}

int main(void) {{
    for (int i = 0; i < {nv}; i++) {{
        verts[i].adj = 0;
        verts[i].key = 1000000;
        verts[i].done = 0;
    }}
    for (int i = 0; i < {nv}; i++) {{
        for (int j = 1; j <= 3; j++) {{
            int b = (i * 7 + j * 11) % {nv};
            if (b != i) {{
                long w = rnd() % 100 + 1;
                addedge(i, b, w);
                addedge(b, i, w);
            }}
        }}
    }}
    verts[0].key = 0;
    long total = 0;
    for (int it = 0; it < {nv}; it++) {{
        int best = 0 - 1;
        for (int i = 0; i < {nv}; i++) {{
            if (!verts[i].done && (best < 0 || verts[i].key < verts[best].key)) {{
                best = i;
            }}
        }}
        verts[best].done = 1;
        total = total + verts[best].key;
        struct edge *e = verts[best].adj;
        while (e) {{
            if (!verts[e->to].done && e->w < verts[e->to].key) {{
                verts[e->to].key = e->w;
            }}
            e = e->next;
        }}
    }}
    putint(total);
    putchar(10);
    return 0;
}}
"#
    )
    .replace("xFFFF", "65535")
}

/// Malloc-heavy stress: churning allocate/free of mixed-size,
/// pointer-rich nodes across four size classes. Every node carries two
/// node capabilities plus a `probe` cursor `probe_delta` bytes past its
/// base; rounds free roughly a third of the live nodes, fragmenting the
/// heap the way the paper's allocator discussion assumes.
fn malloc_stress_src(nodes_per_round: u32, rounds: u32, probe_delta: u32) -> String {
    format!(
        r#"
struct node {{ long v; struct node *next; struct node *buddy; char *probe; }};

struct node *heads[4];
unsigned long seed = 7;

long rnd(void) {{
    seed = seed * 1103515245 + 12345;
    return (long)((seed >> 16) & 32767);
}}

int main(void) {{
    long allocs = 0;
    long frees = 0;
    long checksum = 0;
    for (int c = 0; c < 4; c++) {{ heads[c] = 0; }}
    for (int round = 0; round < {rounds}; round++) {{
        for (int i = 0; i < {nodes_per_round}; i++) {{
            int cls = (int)(rnd() % 4);
            struct node *n = (struct node*)malloc(sizeof(struct node) + (unsigned long)cls * 40);
            n->v = rnd() % 1000;
            n->buddy = heads[(cls + 1) % 4];
            n->probe = (char*)n + {probe_delta};
            n->next = heads[cls];
            heads[cls] = n;
            allocs = allocs + 1;
        }}
        for (int c = 0; c < 4; c++) {{
            struct node *p = heads[c];
            struct node *kept = 0;
            while (p) {{
                struct node *nx = p->next;
                if (p->v % 3 == round % 3) {{
                    checksum = checksum + p->v;
                    free(p);
                    frees = frees + 1;
                }} else {{
                    p->next = kept;
                    kept = p;
                }}
                p = nx;
            }}
            heads[c] = kept;
        }}
    }}
    long live = 0;
    for (int c = 0; c < 4; c++) {{
        struct node *p = heads[c];
        while (p) {{
            checksum = checksum + p->v * (live % 5 + 1);
            live = live + 1;
            p = p->next;
        }}
    }}
    putint(checksum); putchar(32);
    putint(allocs); putchar(32);
    putint(frees); putchar(32);
    putint(live); putchar(10);
    return 0;
}}
"#
    )
}

/// The malloc stress with every `probe` cursor in bounds: runs under all
/// three ABIs (CHERIv2's base-moving pointer arithmetic cannot leave the
/// object), which is what the Figure 1 driver and the cross-ABI identity
/// suites need.
pub fn malloc_stress(nodes_per_round: u32, rounds: u32) -> String {
    malloc_stress_src(nodes_per_round, rounds, 8)
}

/// The malloc stress with every `probe` cursor pushed ~250 KB past its
/// node — an out-of-bounds intermediate the C abstract machine must
/// preserve (Idiom II, MIPS and CHERIv3 only) but that no 128-bit low-fat
/// encoding can represent: every allocation round-trips the Cap128
/// unrepresentable side table.
pub fn malloc_stress_oob(nodes_per_round: u32, rounds: u32) -> String {
    malloc_stress_src(nodes_per_round, rounds, 250_000)
}

/// Dhrystone-like synthetic integer/string benchmark (scalar-heavy, few
/// pointers — the case where CHERI is expected to cost nothing).
pub fn dhrystone(runs: u32) -> String {
    format!(
        r#"
struct record {{
    int discr;
    int enum_comp;
    int int_comp;
    char str_comp[32];
    struct record *ptr_comp;
}};

struct record glob_a;
struct record glob_b;
int int_glob = 0;
char str_1[32];
char str_2[32];

int func_1(int ch1, int ch2) {{
    int ch1_loc = ch1;
    if (ch1_loc != ch2) {{ return 0; }}
    return 1;
}}

int func_2(char *s1, char *s2) {{
    if (strcmp(s1, s2) > 0) {{
        int_glob = int_glob + 7;
        return 1;
    }}
    return 0;
}}

void proc_3(struct record *p) {{
    p->int_comp = 5;
    if (p->ptr_comp) {{
        p->ptr_comp->int_comp = p->int_comp + 10;
    }}
}}

void proc_2(struct record *p) {{
    memcpy(&glob_b, p, sizeof(struct record));
    glob_b.int_comp = p->int_comp * 2;
    proc_3(&glob_b);
}}

int proc_1(int iter) {{
    int sum = 0;
    glob_a.discr = 0;
    glob_a.enum_comp = iter % 3;
    glob_a.int_comp = iter;
    glob_a.ptr_comp = &glob_b;
    proc_2(&glob_a);
    sum = sum + glob_b.int_comp;
    for (int i = 0; i < 8; i++) {{
        sum = sum + i * iter;
        if (func_1((int)str_1[i % 5], (int)str_2[i % 5])) {{
            sum = sum + 1;
        }}
    }}
    if (func_2(str_1, str_2)) {{ sum = sum - 3; }}
    return sum;
}}

int main(void) {{
    memcpy(str_1, "DHRYSTONE PROGRAM, 1'ST", 24);
    memcpy(str_2, "DHRYSTONE PROGRAM, 2'ND", 24);
    long total = 0;
    for (int run = 0; run < {runs}; run++) {{
        total = total + proc_1(run);
    }}
    putint(total);
    putchar(10);
    return 0;
}}
"#
    )
}

/// Size of the tcpdump trace buffer (bytes).
pub const TRACE_CAP: u32 = 262_144;

fn tcpdump_common(parse_fn: &str) -> String {
    format!(
        r#"
unsigned char trace[{TRACE_CAP}];
long n_tcp = 0;
long n_udp = 0;
long n_icmp = 0;
long n_other = 0;
long n_malformed = 0;
long port_sum = 0;

{parse_fn}

int main(void) {{
    long count = ((long)trace[0] << 24) | ((long)trace[1] << 16)
               | ((long)trace[2] << 8) | (long)trace[3];
    long off = 4;
    for (long i = 0; i < count; i++) {{
        long caplen = ((long)trace[off] << 8) | (long)trace[off + 1];
        off = off + 2;
        long r = parse_packet(trace + off, caplen);
        if (r < 0) {{ n_malformed = n_malformed + 1; }}
        off = off + caplen;
    }}
    putint(n_tcp); putchar(32);
    putint(n_udp); putchar(32);
    putint(n_icmp); putchar(32);
    putint(n_other); putchar(32);
    putint(n_malformed); putchar(32);
    putint(port_sum); putchar(10);
    return 0;
}}
"#
    )
}

/// tcpdump-lite, baseline: the classic pointer-arithmetic dissector style
/// ("packet dissection involves substantial pointer arithmetic —
/// ironically, frequently in service of hand-crafted software bounds
/// checking", §5.2).
pub fn tcpdump_baseline() -> String {
    tcpdump_common(
        r#"long parse_packet(const unsigned char *p, long caplen) {
    const unsigned char *end = p + caplen;
    if (p + 14 > end) { return -1; }
    int ethertype = ((int)p[12] << 8) | (int)p[13];
    if (ethertype != 2048) { n_other = n_other + 1; return 0; }
    const unsigned char *ip = p + 14;
    if (ip + 20 > end) { return -1; }
    int ihl = ((int)ip[0] & 15) * 4;
    if (ihl < 20) { return -1; }
    if (ip + ihl > end) { return -1; }
    int proto = (int)ip[9];
    const unsigned char *l4 = ip + ihl;
    long remain = end - l4;
    if (proto == 6) {
        if (remain < 20) { return -1; }
        int sport = ((int)l4[0] << 8) | (int)l4[1];
        int dport = ((int)l4[2] << 8) | (int)l4[3];
        n_tcp = n_tcp + 1;
        port_sum = port_sum + sport + dport;
    } else if (proto == 17) {
        if (remain < 8) { return -1; }
        int sport = ((int)l4[0] << 8) | (int)l4[1];
        int dport = ((int)l4[2] << 8) | (int)l4[3];
        n_udp = n_udp + 1;
        port_sum = port_sum + sport + dport;
    } else if (proto == 1) {
        if (remain < 4) { return -1; }
        n_icmp = n_icmp + 1;
    } else {
        n_other = n_other + 1;
    }
    return 0;
}"#,
    )
}

/// tcpdump-lite ported to CHERIv2: every pointer subtraction and
/// backward-looking comparison rewritten in terms of indices — the ~2.5%
/// semantic rewrite the paper reports (Table 4).
pub fn tcpdump_cheriv2() -> String {
    tcpdump_common(
        r#"long parse_packet(const unsigned char *p, long caplen) {
    long limit = caplen;
    if (14 > limit) { return -1; }
    int ethertype = ((int)p[12] << 8) | (int)p[13];
    if (ethertype != 2048) { n_other = n_other + 1; return 0; }
    long ip = 14;
    if (ip + 20 > limit) { return -1; }
    int ihl = ((int)p[ip] & 15) * 4;
    if (ihl < 20) { return -1; }
    if (ip + ihl > limit) { return -1; }
    int proto = (int)p[ip + 9];
    long l4 = ip + ihl;
    long remain = limit - l4;
    if (proto == 6) {
        if (remain < 20) { return -1; }
        int sport = ((int)p[l4] << 8) | (int)p[l4 + 1];
        int dport = ((int)p[l4 + 2] << 8) | (int)p[l4 + 3];
        n_tcp = n_tcp + 1;
        port_sum = port_sum + sport + dport;
    } else if (proto == 17) {
        if (remain < 8) { return -1; }
        int sport = ((int)p[l4] << 8) | (int)p[l4 + 1];
        int dport = ((int)p[l4 + 2] << 8) | (int)p[l4 + 3];
        n_udp = n_udp + 1;
        port_sum = port_sum + sport + dport;
    } else if (proto == 1) {
        if (remain < 4) { return -1; }
        n_icmp = n_icmp + 1;
    } else {
        n_other = n_other + 1;
    }
    return 0;
}"#,
    )
}

/// tcpdump-lite ported to CHERIv3: identical to the baseline except two
/// lines granting the parser read-only (`__input`) access to the packet —
/// "this change was not strictly required, but provided stronger and
/// finer-grained protection" (§5.2).
pub fn tcpdump_cheriv3() -> String {
    let base = tcpdump_baseline();
    base.replace(
        "long parse_packet(const unsigned char *p, long caplen) {\n    const unsigned char *end = p + caplen;",
        "long parse_packet(const unsigned char * __input p, long caplen) {\n    const unsigned char * __input end = p + caplen;",
    )
}

/// Capacity of the zlib input buffer.
pub const ZLIB_IN_CAP: u32 = 262_144;
/// Capacity of the zlib output buffer.
pub const ZLIB_OUT_CAP: u32 = 393_216;

/// zlib-lite: LZ77-ish compressor behind a `zstream` boundary.
///
/// `copying` selects the binary-compatibility configuration that bounces
///每 chunk through boundary buffers ("copying structures … whenever they
/// are passed across the library boundary", §5.2, Figure 4's
/// "CHERI (copying)" series).
pub fn zlib(file_size: u32, copying: bool) -> String {
    let driver = if copying {
        "deflate_boundary"
    } else {
        "deflate_chunk"
    };
    format!(
        r#"
unsigned char input[{ZLIB_IN_CAP}];
unsigned char output[{ZLIB_OUT_CAP}];
unsigned char in_bounce[4096];
unsigned char out_bounce[4640];
long prev_pos[4096];

struct zstream {{
    const unsigned char *next_in;
    long avail_in;
    unsigned char *next_out;
    long avail_out;
    long total_out;
    unsigned long adler;
}};

long deflate_chunk(struct zstream *s) {{
    long n = s->avail_in;
    if (n > 4096) {{ n = 4096; }}
    const unsigned char *src = s->next_in;
    unsigned char *dst = s->next_out;
    for (long h = 0; h < 4096; h++) {{ prev_pos[h] = 0; }}
    long out = 0;
    long i = 0;
    while (i < n) {{
        long len = 0;
        long dist = 0;
        if (i + 2 < n) {{
            long hash = ((long)src[i] * 31 + (long)src[i + 1] * 7 + (long)src[i + 2]) & 4095;
            long cand = prev_pos[hash] - 1;
            prev_pos[hash] = i + 1;
            if (cand >= 0 && cand < i) {{
                while (len < 60 && i + len < n && src[cand + len] == src[i + len]) {{
                    len = len + 1;
                }}
                dist = i - cand;
            }}
        }}
        if (len >= 4 && dist < 65536) {{
            dst[out] = 255;
            dst[out + 1] = (unsigned char)len;
            dst[out + 2] = (unsigned char)(dist >> 8);
            dst[out + 3] = (unsigned char)(dist & 255);
            out = out + 4;
            long j = 0;
            while (j < len) {{
                s->adler = (s->adler + (unsigned long)src[i + j]) % 65521;
                j = j + 1;
            }}
            i = i + len;
        }} else {{
            unsigned char c = src[i];
            if (c == 255) {{
                dst[out] = 255;
                dst[out + 1] = 0;
                out = out + 2;
            }} else {{
                dst[out] = c;
                out = out + 1;
            }}
            s->adler = (s->adler + (unsigned long)c) % 65521;
            i = i + 1;
        }}
    }}
    s->next_in = src + n;
    s->avail_in = s->avail_in - n;
    s->next_out = dst + out;
    s->avail_out = s->avail_out - out;
    s->total_out = s->total_out + out;
    return n;
}}

long deflate_boundary(struct zstream *s) {{
    struct zstream tmp;
    long n = s->avail_in;
    if (n > 4096) {{ n = 4096; }}
    memcpy(in_bounce, s->next_in, (unsigned long)n);
    tmp.next_in = in_bounce;
    tmp.avail_in = n;
    tmp.next_out = out_bounce;
    tmp.avail_out = 4640;
    tmp.total_out = 0;
    tmp.adler = s->adler;
    deflate_chunk(&tmp);
    memcpy(s->next_out, out_bounce, (unsigned long)tmp.total_out);
    s->next_in = s->next_in + n;
    s->avail_in = s->avail_in - n;
    s->next_out = s->next_out + tmp.total_out;
    s->avail_out = s->avail_out - tmp.total_out;
    s->total_out = s->total_out + tmp.total_out;
    s->adler = tmp.adler;
    return n;
}}

int main(void) {{
    struct zstream s;
    s.next_in = input;
    s.avail_in = {file_size};
    s.next_out = output;
    s.avail_out = {ZLIB_OUT_CAP};
    s.total_out = 0;
    s.adler = 1;
    while (s.avail_in > 0) {{
        {driver}(&s);
    }}
    putint(s.total_out);
    putchar(32);
    putint((long)s.adler);
    putchar(10);
    return 0;
}}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sources_parse() {
        for (name, src) in [
            ("treeadd", treeadd(4, 2)),
            ("bisort", bisort(32)),
            ("perimeter", perimeter(3)),
            ("mst", mst(16)),
            ("malloc stress", malloc_stress(8, 2)),
            ("malloc stress oob", malloc_stress_oob(8, 2)),
            ("dhrystone", dhrystone(5)),
            ("tcpdump baseline", tcpdump_baseline()),
            ("tcpdump v2", tcpdump_cheriv2()),
            ("tcpdump v3", tcpdump_cheriv3()),
            ("zlib", zlib(4096, false)),
            ("zlib copying", zlib(4096, true)),
        ] {
            cheri_c::parse(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn tcpdump_v3_differs_in_two_lines() {
        let base = tcpdump_baseline();
        let v3 = tcpdump_cheriv3();
        let diff: Vec<(&str, &str)> = base
            .lines()
            .zip(v3.lines())
            .filter(|(a, b)| a != b)
            .collect();
        assert_eq!(diff.len(), 2, "exactly the paper's two changed lines");
        assert!(diff.iter().all(|(_, b)| b.contains("__input")));
    }
}
