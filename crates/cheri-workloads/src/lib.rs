//! The paper's evaluation workloads, §5.2, as mini-C programs:
//!
//! * **Olden** kernels (`bisort`, `mst`, `treeadd`, `perimeter`) — "heavy
//!   in pointer use and so demonstrates a worst case for CHERI".
//! * **Dhrystone** — "a less pointer-intensive benchmark".
//! * **tcpdump-lite** — an Ethernet/IPv4/TCP/UDP/ICMP dissector written in
//!   the hand-rolled bounds-checking style of the real tcpdump, with
//!   baseline, CHERIv2-port and CHERIv3-port variants (Table 4's subject).
//! * **zlib-lite** — an LZ77-style compressor behind a `zstream` library
//!   boundary, in plain and boundary-copying configurations (Figure 4).
//!
//! Plus the machinery around them:
//!
//! * [`runner`] — compile-and-execute on the [`cheri_vm`] emulator with
//!   input poking by symbol.
//! * [`inputs`] — deterministic packet-trace and file generators standing
//!   in for the OSDI'06 CRAWDAD trace and the paper's test files.
//! * [`porting`] — the Table 4 line-diff classifier separating
//!   `__capability` annotations from semantic changes.

pub mod inputs;
pub mod porting;
pub mod runner;
pub mod sources;

pub use runner::{run_workload, RunOutcome, WorkloadError};
