//! Deterministic input generators.
//!
//! The paper feeds tcpdump "the first 100,000 packets" of a CRAWDAD OSDI'06
//! trace and compresses "files of varying sizes" with zlib. Neither input
//! is redistributable, so we synthesize equivalents with seeded generators:
//! what the experiments measure is parsing/compression *work*, not trace
//! content (see DESIGN.md's substitution table).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a packet trace in the tcpdump-lite wire format:
/// `[count:u32 BE] ([caplen:u16 BE] [bytes…])*`.
///
/// The mix is realistic-ish: mostly TCP, some UDP, a little ICMP, a few
/// non-IP frames, and ~1% malformed (truncated) packets to exercise the
/// bounds-check paths that make tcpdump a memory-safety poster child.
pub fn packet_trace(packets: u32, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = vec![0u8; 4];
    out[0..4].copy_from_slice(&packets.to_be_bytes());
    for _ in 0..packets {
        let kind = rng.gen_range(0..100);
        let mut pkt = Vec::with_capacity(128);
        // Ethernet header: two MACs and an ethertype.
        for _ in 0..12 {
            pkt.push(rng.gen());
        }
        if kind >= 97 {
            // Non-IP frame (ARP-ish).
            pkt.extend_from_slice(&[0x08, 0x06]);
            for _ in 0..rng.gen_range(16..40) {
                pkt.push(rng.gen());
            }
        } else {
            pkt.extend_from_slice(&[0x08, 0x00]);
            let proto: u8 = if kind < 70 {
                6
            } else if kind < 90 {
                17
            } else {
                1
            };
            let payload = rng.gen_range(8..120usize);
            let ihl = 20;
            let l4 = if proto == 6 { 20 } else { 8 };
            let tot = ihl + l4 + payload;
            let mut ip = vec![0u8; ihl];
            ip[0] = 0x45; // v4, ihl=5
            ip[2] = (tot >> 8) as u8;
            ip[3] = (tot & 0xff) as u8;
            ip[8] = 64; // ttl
            ip[9] = proto;
            for b in &mut ip[12..20] {
                *b = rng.gen();
            }
            pkt.extend_from_slice(&ip);
            let sport: u16 = rng.gen_range(1024..60000);
            let dport: u16 = *[80u16, 443, 53, 22, 8080]
                .get(rng.gen_range(0..5usize))
                .unwrap();
            pkt.extend_from_slice(&sport.to_be_bytes());
            pkt.extend_from_slice(&dport.to_be_bytes());
            for _ in 4..l4 + payload {
                pkt.push(rng.gen());
            }
        }
        // ~1% malformed: truncate below the Ethernet header.
        if rng.gen_range(0..100) < 1 {
            pkt.truncate(rng.gen_range(0..14));
        }
        let caplen = pkt.len() as u16;
        out.extend_from_slice(&caplen.to_be_bytes());
        out.extend_from_slice(&pkt);
    }
    out
}

/// Builds a compressible file of `size` bytes: a mix of repeated phrases
/// (long matches), runs, and noise — gzip-meaningful structure.
pub fn compressible_file(size: usize, seed: u64) -> Vec<u8> {
    const PHRASES: [&str; 4] = [
        "the quick brown fox jumps over the lazy dog. ",
        "pack my box with five dozen liquor jugs: ",
        "0123456789abcdef",
        "AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA",
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(size);
    while out.len() < size {
        match rng.gen_range(0..10) {
            0..=5 => {
                let p = PHRASES[rng.gen_range(0..PHRASES.len())].as_bytes();
                out.extend_from_slice(p);
            }
            6..=7 => {
                let b: u8 = rng.gen_range(b'a'..=b'z');
                let n = rng.gen_range(4..40);
                out.extend(std::iter::repeat_n(b, n));
            }
            _ => {
                for _ in 0..rng.gen_range(2..10) {
                    out.push(rng.gen());
                }
            }
        }
    }
    out.truncate(size);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_and_well_formed() {
        let a = packet_trace(50, 7);
        let b = packet_trace(50, 7);
        assert_eq!(a, b);
        assert_ne!(a, packet_trace(50, 8));
        let count = u32::from_be_bytes([a[0], a[1], a[2], a[3]]);
        assert_eq!(count, 50);
        // Walk the framing.
        let mut off = 4usize;
        for _ in 0..count {
            let caplen = u16::from_be_bytes([a[off], a[off + 1]]) as usize;
            off += 2 + caplen;
        }
        assert_eq!(off, a.len());
    }

    #[test]
    fn file_is_deterministic_and_sized() {
        let f = compressible_file(4096, 3);
        assert_eq!(f.len(), 4096);
        assert_eq!(f, compressible_file(4096, 3));
        // Compressible: repeated phrases should make many byte pairs recur.
        let mut pairs = std::collections::HashSet::new();
        for w in f.windows(2) {
            pairs.insert([w[0], w[1]]);
        }
        assert!(pairs.len() < 3000, "structure should repeat");
    }
}
