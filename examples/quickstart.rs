//! Quickstart: the memory-safe C abstract machine in five minutes.
//!
//! Run with `cargo run --example quickstart`.
//!
//! Walks the three layers of the reproduction: raw capabilities, the
//! abstract-machine interpreter with swappable memory models, and the
//! compiler + emulator pipeline.

use cheri::cap::{Capability, Perms};
use cheri::compile::{compile, Abi};
use cheri::interp::{run_main, ModelKind};
use cheri::vm::{Vm, VmConfig};

fn main() {
    // --- 1. Capabilities: bounds travel with the pointer -----------------
    println!("== capabilities ==");
    let obj = Capability::new_mem(0x1000, 64, Perms::data());
    let p = obj.inc_offset(100).expect("CHERIv3 arithmetic may roam");
    println!("p = {p}");
    println!(
        "deref out of bounds: {:?}",
        p.check_access(1, Perms::LOAD).unwrap_err()
    );
    let back = p.inc_offset(-60).expect("and roam back");
    println!(
        "back in bounds at {:#x}: ok={}",
        back.address(),
        back.check_access(1, Perms::LOAD).is_ok()
    );

    // --- 2. One program, seven interpretations of the C abstract machine -
    println!("\n== abstract machine interpreter ==");
    let src = r#"
        int main(void) {
            char *p = (char*)malloc(16);
            p[20] = 1;   /* classic buffer overflow */
            return 0;
        }
    "#;
    let unit = cheri::c::parse(src).expect("parses");
    for model in ModelKind::ALL {
        match run_main(&unit, model) {
            Ok(r) => println!(
                "{:<18} overflow undetected (exit {})",
                model.to_string(),
                r.exit_code
            ),
            Err(e) => println!("{:<18} caught: {e}", model.to_string()),
        }
    }

    // --- 3. Compile for the CHERIv3 ABI and run on the emulator ----------
    println!("\n== compiled for the CHERIv3 ABI ==");
    let prog = compile(
        r#"
        int main(void) {
            int a[4];
            a[2] = 9;
            int *p = a + 9;   /* out-of-bounds intermediate (idiom II) */
            p = p - 7;        /* fine on CHERIv3: offset roams, deref checks */
            putint(*p);
            putchar(10);
            return 0;
        }
        "#,
        Abi::CheriV3,
    )
    .expect("compiles");
    let mut vm = Vm::new(prog, VmConfig::fpga());
    let exit = vm.run(1_000_000).expect("runs");
    print!("output: {}", vm.output_string());
    println!(
        "exit {} in {} cycles ({} instructions)",
        exit.code, exit.stats.cycles, exit.stats.instret
    );
}
