//! Capability sandboxing (paper §4.1): "The total memory that is reachable
//! from a piece of code is the transitive closure of the memory
//! capabilities reachable from its capability registers."
//!
//! Run with `cargo run --example sandbox`.
//!
//! We hand untrusted code a *restricted* view of a buffer — first read-only
//! (`__input`-style), then length-limited — and watch the hardware-style
//! checks confine it. No MMU, no process boundary: just capabilities.

use cheri::cap::{CapError, CapFormat, Capability, Perms};
use cheri::gc::Collector;
use cheri::mem::{Allocator, TaggedMemory, UnrepresentablePolicy};

fn untrusted_sum(mem: &TaggedMemory, view: Capability) -> Result<u64, CapError> {
    let mut sum = 0;
    for i in 0..view.length() {
        let p = view.set_offset(i)?;
        let addr = p.check_access(1, Perms::LOAD)?;
        sum += mem.read_u8(addr).expect("in range") as u64;
    }
    Ok(sum)
}

fn untrusted_scribble(mem: &mut TaggedMemory, view: Capability) -> Result<(), CapError> {
    let addr = view.check_access(1, Perms::STORE)?;
    mem.write_u8(addr, 0xEE).expect("in range");
    Ok(())
}

fn main() {
    let mut mem = TaggedMemory::new(0x10000);
    let secret_base = 0x1000;
    let public_base = 0x2000;
    mem.write_bytes(secret_base, b"top secret").unwrap();
    mem.write_bytes(public_base, &[1, 2, 3, 4, 5, 6, 7, 8])
        .unwrap();

    // Full authority over the public buffer...
    let public = Capability::new_mem(public_base, 8, Perms::data());
    // ...but the sandbox only receives a read-only view of half of it.
    let view = public
        .set_length(4)
        .unwrap()
        .and_perms(Perms::input())
        .unwrap();

    println!("sandbox view: {view}");
    println!(
        "sum of visible bytes: {}",
        untrusted_sum(&mem, view).unwrap()
    );

    // Writing through the view is a permission violation.
    match untrusted_scribble(&mut mem, view) {
        Err(e) => println!("write blocked: {e}"),
        Ok(()) => unreachable!("the input view must not be writable"),
    }

    // Escaping the bounds is a bounds violation — even though the secret
    // is right there in the same address space.
    let escape = view
        .set_offset(secret_base.wrapping_sub(public_base))
        .unwrap();
    match escape.check_access(1, Perms::LOAD) {
        Err(e) => println!("escape blocked: {e}"),
        Ok(_) => unreachable!("bounds must hold"),
    }

    // And a forged pointer (integer smuggled into a capability) has no tag.
    let forged = Capability::from_int(secret_base);
    match forged.check_access(1, Perms::LOAD) {
        Err(e) => println!("forgery blocked: {e}"),
        Ok(_) => unreachable!("untagged values must not dereference"),
    }

    // Bonus (§4.2): the tag-accurate collector can relocate objects out
    // from under integers, because integers are provably not pointers.
    println!("\n== relocating GC over tagged memory ==");
    let mut gc = Collector::new(0x4000, 0x8000);
    let a = gc.alloc(&mut mem, 64).unwrap();
    let b = gc.alloc(&mut mem, 64).unwrap();
    mem.write_cap(a.base(), &b).unwrap(); // a -> b (a real, tagged pointer)
    mem.write_u64(a.base() + 32, b.base()).unwrap(); // b's ADDRESS as an int
    let mut roots = [a];
    let stats = gc.collect(&mut mem, &mut roots);
    println!(
        "collected: {} objects live, {} capabilities rewritten (the integer copy of the address kept nothing alive)",
        stats.live_objects, stats.rewritten_caps
    );

    // Bonus 2: the same spill/reload story on low-fat 128-bit capability
    // storage. A 2^E-padding allocator keeps every handed-out capability
    // representable, so the compressed memory behaves identically while
    // storing half the bytes per pointer.
    println!("\n== 128-bit compressed capability storage ==");
    let mut mem128 =
        TaggedMemory::with_format(0x10000, CapFormat::Cap128, UnrepresentablePolicy::SideTable);
    let mut heap = Allocator::with_format(0x4000, 0x8000, CapFormat::Cap128);
    let obj = heap.alloc_cap(100, Perms::data()).unwrap();
    mem128.write_cap(0x2000, &obj).unwrap();
    let back = mem128.read_cap(0x2000).unwrap();
    assert_eq!(back, obj);
    println!(
        "spilled and reloaded {obj} intact; resident capability storage: {} bytes (vs 32 in the 256-bit format), escapes: {}",
        mem128.cap_footprint_bytes(),
        mem128.side_table_len(),
    );
}
