//! The multi-tenant sandbox service (paper §4.1, scaled out): each tenant
//! is an untrusted guest compiled for the CHERI ABI, warmed up once, then
//! served from copy-on-write forks of its ready image. Capability bounds —
//! not an MMU or a process boundary — are what confine a misbehaving
//! request, and forking means a trapped request costs the tenant nothing:
//! the poisoned fork is discarded and the next request starts from the
//! same pristine snapshot.
//!
//! Run with `cargo run --release --example sandbox`.

use cheri::compile::Abi;
use cheri::sandbox::{guests, Outcome, Request, SandboxService, TenantConfig};
use cheri::vm::{CapFormat, VmConfig};

fn main() {
    // A small fleet: two well-behaved tenants (one per capability format)
    // and one guest that dereferences out of bounds whenever the first
    // payload byte is odd.
    let quota = 4 << 20; // 4 MiB per tenant
    let vm = |format| {
        VmConfig::functional()
            .with_mem_size(quota)
            .with_cap_format(format)
    };
    let fleet = vec![
        TenantConfig::new("tree", guests::tree_service(8), Abi::CheriV3)
            .with_vm(vm(CapFormat::Cap256)),
        TenantConfig::new("table", guests::table_service(), Abi::CheriV3)
            .with_vm(vm(CapFormat::Cap128)),
        TenantConfig::new("oob", guests::oob_service(), Abi::CheriV3)
            .with_vm(vm(CapFormat::Cap256)),
    ];

    let mut service = SandboxService::new();
    for cfg in fleet {
        let id = service
            .add_tenant(cfg)
            .unwrap_or_else(|e| panic!("tenant admission failed: {e}"));
        println!(
            "admitted tenant {:>5} (warm image {} KiB)",
            service.tenant_name(id),
            service.warm_bytes(id) >> 10
        );
    }

    // A request stream that interleaves the tenants and deliberately pokes
    // the out-of-bounds guest with both even (in-bounds) and odd
    // (trapping) leading bytes.
    let requests = vec![
        Request {
            tenant: 0,
            payload: b"abcdef".to_vec(),
        },
        Request {
            tenant: 1,
            payload: b"hash me".to_vec(),
        },
        Request {
            tenant: 2,
            payload: vec![2, 0, 0],
        }, // even -> in-bounds
        Request {
            tenant: 2,
            payload: vec![7, 0, 0],
        }, // odd  -> capability trap
        Request {
            tenant: 0,
            payload: b"ghij".to_vec(),
        },
        Request {
            tenant: 2,
            payload: vec![4, 4, 4],
        }, // even again: unharmed
        Request {
            tenant: 1,
            payload: b"hash me".to_vec(),
        },
    ];

    println!("\nserving {} requests on 2 workers:", requests.len());
    for resp in service.serve(&requests, 2) {
        let req = &requests[resp.request];
        match &resp.outcome {
            Outcome::Completed { output, instret, .. } => println!(
                "  #{:<2} {:>5} {:<12} -> completed in {:>6} instructions, output {:?}",
                resp.request,
                service.tenant_name(resp.tenant),
                format!("{:?}", String::from_utf8_lossy(&req.payload)),
                instret,
                output.trim_end()
            ),
            Outcome::Trapped { trap, .. } => println!(
                "  #{:<2} {:>5} {:<12} -> TRAPPED ({:?} at pc {:#x}); fork discarded, tenant rewound",
                resp.request,
                service.tenant_name(resp.tenant),
                format!("{:?}", req.payload),
                trap.cause,
                trap.pc
            ),
            other => println!(
                "  #{:<2} {:>5} -> {:?}",
                resp.request,
                service.tenant_name(resp.tenant),
                other
            ),
        }
    }

    // The trap left no residue: the same tenant keeps serving, and its
    // snapshot still forks bit-identical guests.
    let again = service.serve(
        &[Request {
            tenant: 2,
            payload: vec![8, 1, 2],
        }],
        1,
    );
    assert!(
        again[0].outcome.is_completed(),
        "tenant must survive a trapped request untouched"
    );
    println!(
        "\nthe trapping tenant answered its next request normally — rewind-and-continue works"
    );
}
