//! The paper's motivating scenario (§5.2): a packet dissector exposed to
//! malicious input.
//!
//! Run with `cargo run --example packet_filter`.
//!
//! tcpdump "typically runs as root … and is often used for inspecting
//! suspicious network traffic. This means that its packet parsers — written
//! using extensive pointer arithmetic — are exposed to malicious data."
//!
//! We run a *deliberately buggy* parser (a length field is trusted without
//! a bounds check) over a crafted packet. Under the MIPS ABI the over-read
//! silently leaks adjacent memory; under CHERIv3 the very same source traps
//! at the first out-of-bounds byte.

use cheri::compile::{compile, Abi};
use cheri::vm::{Vm, VmConfig};

/// A parser with a classic vulnerability: `optlen` comes from the wire and
/// is used to walk memory without validation.
const BUGGY_PARSER: &str = r#"
unsigned char packet[64];

long parse_options(void) {
    /* Trust the attacker-controlled length byte: the bug. */
    long optlen = (long)packet[2];
    long sum = 0;
    for (long i = 0; i < optlen; i++) {
        sum = sum + (long)packet[4 + i];   /* may over-read the buffer */
    }
    return sum;
}

int main(void) {
    long s = parse_options();
    putint(s);
    putchar(10);
    return 0;
}
"#;

fn main() {
    // Craft the malicious packet: length byte says 200, buffer holds 64.
    let mut packet = vec![0u8; 64];
    packet[2] = 200;
    for (i, b) in packet.iter_mut().enumerate().skip(4) {
        *b = i as u8;
    }

    for abi in [Abi::Mips, Abi::CheriV3] {
        println!("== {abi} ==");
        let prog = compile(BUGGY_PARSER, abi).expect("compiles");
        let sym = prog
            .symbols
            .iter()
            .find(|s| s.name == "packet")
            .expect("packet buffer symbol");
        let addr = sym.value;
        let mut vm = Vm::new(prog, VmConfig::fpga());
        vm.mem_mut().write_bytes(addr, &packet).expect("fits");
        // Plant a "secret" just past the buffer so the leak is visible.
        vm.mem_mut()
            .write_bytes(addr + 64, b"SECRET-KEY")
            .expect("fits");
        match vm.run(1_000_000) {
            Ok(exit) => {
                println!(
                    "parser ran to completion (exit {}), summed {} bytes INCLUDING adjacent memory",
                    exit.code, 200
                );
                println!("output: {}", vm.output_string().trim());
                println!("-> information leak: the secret was readable.\n");
            }
            Err(trap) => {
                println!("parser trapped: {trap}");
                println!("-> the capability's bounds stopped the over-read at byte 64.\n");
            }
        }
    }
}
