//! # `cheri` — a memory-safe C abstract machine on the CHERI capability model
//!
//! This is the facade crate of a full reproduction of *Beyond the PDP-11:
//! Architectural support for a memory-safe C abstract machine* (Chisnall et
//! al., ASPLOS 2015). It re-exports every subsystem:
//!
//! * [`cap`] — the CHERIv2/CHERIv3 capability model (fat capabilities with
//!   base, length, offset, permissions; tagged; sealable).
//! * [`mem`] — the tagged-memory substrate (1 tag bit per 32-byte granule)
//!   and a bounds-handing allocator.
//! * [`cache`] — a set-associative cache-hierarchy simulator used for the
//!   performance evaluation (16 KB L1 / 64 KB L2, as on the paper's FPGA).
//! * [`isa`] — the MIPS-like 64-bit ISA plus the CHERI extension
//!   instructions of the paper's Table 2.
//! * [`vm`] — a cycle-approximate CPU emulator executing that ISA.
//! * [`c`] — a mini-C frontend (lexer, parser, typed AST).
//! * [`interp`] — the paper's "simple abstract machine interpreter" with
//!   seven pluggable memory models (PDP-11, HardBound, Intel MPX, Relaxed,
//!   Strict, CHERIv2, CHERIv3).
//! * [`idioms`] — the pointer-idiom taxonomy, test cases, static analyzer
//!   and synthetic corpus generator behind Tables 1 and 3.
//! * [`lint`] — a flow-sensitive abstract interpreter over the execution
//!   IR predicting per-model traps and CHERI portability statically.
//! * [`compile`] — a mini-C → ISA code generator with MIPS, CHERIv2 and
//!   CHERIv3 ABIs.
//! * [`gc`] — the tag-accurate copying/generational collector sketched in
//!   the paper's §4.2.
//! * [`workloads`] — Olden, Dhrystone, tcpdump-lite and zlib-lite sources
//!   plus the porting-effort tooling behind Table 4 and Figures 1–4.
//! * [`sandbox`] — the multi-tenant sandbox service: a work-stealing,
//!   fuel-sliced scheduler serving request streams from copy-on-write
//!   forks of warmed-up guest images, with rewind-on-trap.
//!
//! ## Quickstart
//!
//! ```
//! use cheri::cap::{Capability, Perms};
//!
//! // An allocation is a capability: bounds travel with the pointer.
//! let buf = Capability::new_mem(0x1_0000, 128, Perms::data());
//! let p = buf.inc_offset(200).unwrap();      // arithmetic may roam...
//! assert!(p.check_access(1, Perms::LOAD).is_err()); // ...dereference may not
//! ```

pub use cheri_c as c;
pub use cheri_cache as cache;
pub use cheri_cap as cap;
pub use cheri_compile as compile;
pub use cheri_gc as gc;
pub use cheri_idioms as idioms;
pub use cheri_interp as interp;
pub use cheri_isa as isa;
pub use cheri_lint as lint;
pub use cheri_mem as mem;
pub use cheri_sandbox as sandbox;
pub use cheri_vm as vm;
pub use cheri_workloads as workloads;
